"""Command-line interface: ``repro <subcommand>``.

Wraps the library's main workflows the way RAxML-Light/ExaML are driven
in practice — files in, files out:

* ``repro simulate``  — generate a GTR+Gamma alignment (INDELible stand-in)
* ``repro search``    — full ML tree search on an alignment file
* ``repro place``     — EPA: place query sequences on a reference tree
* ``repro backends``  — list the registered PLF kernel backends
* ``repro plan``      — print the levelized execution plan (dependency
                        waves) for an alignment, optionally after a
                        random SPR/NNI move (the incremental replan)
* ``repro kernels``   — per-kernel VM measurements (Figure 3 raw data)
* ``repro predict``   — trace-driven runtime/energy prediction for one
                        platform and alignment size (Table III cells)
* ``repro faults``    — run a search under a named fault-injection plan
                        (crashes, flaky PCIe, dying ranks), auto-resume
                        from checkpoints, and report survival
* ``repro trace``     — validate + summarise a saved Chrome trace (top
                        spans by self time, per-kernel histograms, wave
                        timeline, hottest folded-stack paths)
* ``repro bench``     — run benchmark suites into the unified perf
                        ledger, ingest legacy ``BENCH_*.json`` reports,
                        and diff ledger snapshots for regressions
                        (``--compare BASELINE``)

``repro search`` and ``repro place`` accept ``--backend`` to pick the
kernel implementation (reference / blocked / shadow); the
``REPRO_BACKEND`` environment variable sets the process-wide default.

Tracing: ``repro search`` checkpoints crash-safely with ``--checkpoint ck.json``
(rotated atomic snapshots) and restarts with ``--resume ck.json``; an
injected or real mid-run death costs only the steps since the last
snapshot.

Tracing: ``repro search``/``repro place`` accept ``--trace out.json``
to record a Chrome trace of the run (open it in Perfetto, or feed it to
``repro trace``).  Setting ``REPRO_TRACE=/path.json`` enables the same
for *any* subcommand.  While tracing is on, ``repro backends`` and
``repro plan`` also print the metrics-registry snapshot.

Live observability: ``--serve-metrics PORT`` (search/place/faults, or
``REPRO_METRICS_PORT`` for any subcommand) starts a background HTTP
endpoint answering ``/metrics`` (Prometheus text), ``/healthz`` (worker
liveness, arena leaks, checkpoint age; 503 when degraded), and
``/progress`` (stage, lnL trajectory, ETA) while the run is going.
``--profile OUT.folded`` (or ``REPRO_PROFILE``) samples the wall clock
with a background profiler and writes folded stacks on exit.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

__all__ = ["main", "build_parser"]


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--backend`` option to a subcommand parser."""
    from .core.backends import DEFAULT_BACKEND_ENV, available_backends

    parser.add_argument(
        "--backend",
        choices=[info.name for info in available_backends()] + ["auto"],
        default=None,
        help=(
            "PLF kernel backend, or 'auto' to let the cost-model "
            "autotuner pick one per workload (default: $"
            + DEFAULT_BACKEND_ENV
            + " or 'reference'; see 'repro backends' and 'repro tune')"
        ),
    )


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--workers`` / ``--exec`` options."""
    from .parallel.forkjoin import (
        EXEC_ENV,
        EXECUTION_MODES,
        WORKERS_ENV,
        default_execution,
        default_workers,
    )

    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        metavar="N",
        help=(
            "parallel site-slice workers; N>1 runs every likelihood "
            "evaluation on a fork-join engine with bit-identical results "
            "(default: $" + WORKERS_ENV + " or 1)"
        ),
    )
    parser.add_argument(
        "--exec",
        dest="execution",
        choices=list(EXECUTION_MODES),
        default=default_execution(),
        help=(
            "parallel execution substrate: 'simulated' (modelled barriers), "
            "'threads' (in-process pool), 'processes' (spawn-once worker "
            "pool over a shared-memory arena) "
            "(default: $" + EXEC_ENV + " or 'simulated')"
        ),
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` option to a subcommand parser."""
    from .obs.spans import TRACE_ENV

    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.json",
        help=(
            "record a Chrome trace of this run to OUT.json "
            "(also enabled CLI-wide by $" + TRACE_ENV + ")"
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the live-observability options (endpoint + profiler)."""
    from .obs.profiler import PROFILE_ENV
    from .obs.server import SERVE_ENV

    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics, /healthz, and /progress on 127.0.0.1:PORT "
            "while this run executes (0 picks an ephemeral port; also "
            "enabled CLI-wide by $" + SERVE_ENV + ")"
        ),
    )
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="OUT.folded",
        help=(
            "sample the wall clock with a background profiler and write "
            "folded stacks to OUT.folded on exit "
            "(also enabled CLI-wide by $" + PROFILE_ENV + ")"
        ),
    )
    parser.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="profiler sampling rate (default 97 Hz, or $REPRO_PROFILE_HZ)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PLF-on-MIC reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate a GTR+Gamma alignment")
    p_sim.add_argument("--taxa", type=int, default=15)
    p_sim.add_argument("--sites", type=int, default=1000)
    p_sim.add_argument("--seed", type=int, default=2014)
    p_sim.add_argument("--alpha", type=float, default=1.0)
    p_sim.add_argument("--out", type=Path, required=True, help="PHYLIP output")
    p_sim.add_argument("--tree-out", type=Path, help="write the true tree")

    p_search = sub.add_parser("search", help="maximum-likelihood tree search")
    p_search.add_argument("alignment", type=Path, help="FASTA or PHYLIP file")
    p_search.add_argument("--out", type=Path, help="Newick output")
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--radius", type=int, nargs="+", default=[5, 10])
    p_search.add_argument("--no-rates", action="store_true",
                          help="skip GTR exchangeability optimisation")
    p_search.add_argument("--draw", action="store_true",
                          help="print the tree as ASCII art")
    p_search.add_argument("--start", choices=["parsimony", "nj"],
                          default="parsimony",
                          help="starting-tree method")
    p_search.add_argument(
        "--branch-opt", choices=["newton", "gradient", "prox"],
        default="newton", metavar="METHOD",
        help="branch-length smoothing method: per-branch Newton sweeps "
             "(default), one-traversal gradient smoothing, or L1 "
             "proximal-gradient (newton|gradient|prox); a resumed run "
             "keeps the method recorded in its checkpoint",
    )
    p_search.add_argument(
        "--checkpoint", type=Path, metavar="CK.json",
        help="write crash-safe rotated snapshots to CK.json during the "
             "search (atomic write, last --checkpoint-keep kept)",
    )
    p_search.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot period in driver steps (default 1; 0 disables "
             "periodic writes, abort checkpoints still fire)",
    )
    p_search.add_argument(
        "--checkpoint-keep", type=int, default=3, metavar="K",
        help="rotation depth: keep the last K snapshots (default 3)",
    )
    p_search.add_argument(
        "--resume", type=Path, metavar="CK.json",
        help="resume from the newest loadable snapshot in this "
             "checkpoint rotation instead of starting fresh",
    )
    p_search.add_argument(
        "--fault-plan", metavar="NAME",
        help="run under a named fault-injection plan "
             "(see 'repro faults --list')",
    )
    p_search.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's RNG (default 0)",
    )
    _add_backend_flag(p_search)
    _add_parallel_flags(p_search)
    _add_trace_flag(p_search)
    _add_obs_flags(p_search)

    p_stats = sub.add_parser("stats", help="alignment summary statistics")
    p_stats.add_argument("alignment", type=Path, help="FASTA or PHYLIP file")

    p_place = sub.add_parser("place", help="EPA query placement")
    p_place.add_argument("--reference", type=Path, required=True,
                         help="reference alignment (FASTA/PHYLIP)")
    p_place.add_argument("--tree", type=Path, required=True,
                         help="reference tree (Newick)")
    p_place.add_argument("--queries", type=Path, required=True,
                         help="aligned query sequences (FASTA)")
    p_place.add_argument("--out", type=Path, help="jplace output")
    p_place.add_argument("--best", type=int, default=5)
    _add_backend_flag(p_place)
    _add_parallel_flags(p_place)
    _add_trace_flag(p_place)
    _add_obs_flags(p_place)

    p_serve = sub.add_parser(
        "serve", help="run the long-running placement server"
    )
    p_serve.add_argument("port", type=int, nargs="?", default=8752,
                         help="listen port (0 picks an ephemeral one)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--ref", type=Path,
                         help="reference tree (Newick) for the initial tenant")
    p_serve.add_argument("--aln", type=Path,
                         help="reference alignment (FASTA/PHYLIP) for the "
                              "initial tenant")
    p_serve.add_argument("--name", default="default",
                         help="initial tenant name (default: 'default')")
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="max queries fused into one dispatch")
    p_serve.add_argument("--batch-wait-ms", type=float, default=20.0,
                         help="batching window after the first request")
    p_serve.add_argument("--max-tenants", type=int, default=4,
                         help="resident reference trees (LRU beyond this)")
    p_serve.add_argument("--max-resident", type=int, default=None,
                         help="memsave cap for the warm reference engine")
    p_serve.add_argument("--keep-best", type=int, default=5)
    p_serve.add_argument("--allow-fault-injection", action="store_true",
                         help="enable POST /faults/kill-worker")
    _add_backend_flag(p_serve)
    _add_parallel_flags(p_serve)

    sub.add_parser("backends", help="list registered PLF kernel backends")

    p_tune = sub.add_parser(
        "tune",
        help="probe kernel backends and cache the predicted-fastest "
             "configuration (used by --backend auto)",
    )
    p_tune.add_argument(
        "--sites", type=int, default=100_000,
        help="workload width (site patterns) to tune for",
    )
    p_tune.add_argument("--states", type=int, default=4,
                        help="alphabet size (DNA: 4)")
    p_tune.add_argument("--rates", type=int, default=4,
                        help="rate categories (Gamma default: 4)")
    p_tune.add_argument(
        "--rounds", type=int, default=2,
        help="timed probe rounds per candidate (more = steadier estimates)",
    )
    p_tune.add_argument(
        "--refresh", action="store_true",
        help="re-probe even when the tuning cache already has a decision",
    )
    p_tune.add_argument(
        "--show", action="store_true",
        help="print every cached decision and exit without probing",
    )

    p_plan = sub.add_parser(
        "plan", help="print the levelized execution plan (dependency waves)"
    )
    p_plan.add_argument("alignment", type=Path, help="FASTA or PHYLIP file")
    p_plan.add_argument("--tree", type=Path,
                        help="Newick tree (default: NJ on JC distances)")
    p_plan.add_argument(
        "--move", choices=["none", "spr", "nni"], default="none",
        help="apply a random topology move to a validated engine and "
             "show the incremental replan",
    )
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument(
        "--derivatives", action="store_true",
        help="also print the gradient up-sweep (pre-order) waves and the "
             "modelled cost of both sweeps",
    )
    _add_backend_flag(p_plan)

    sub.add_parser("kernels", help="VM kernel measurements (Figure 3)")

    p_pred = sub.add_parser("predict", help="runtime/energy prediction")
    p_pred.add_argument("--sites", type=int, required=True)
    p_pred.add_argument(
        "--system",
        choices=["cpu2630", "cpu2680", "mic1", "mic2"],
        default="mic1",
    )

    p_faults = sub.add_parser(
        "faults",
        help="run a search under a fault-injection plan and report survival",
    )
    p_faults.add_argument(
        "alignment", type=Path, nargs="?", help="FASTA or PHYLIP file"
    )
    p_faults.add_argument(
        "--plan", default="crash-midsearch", metavar="NAME",
        help="named fault plan (default crash-midsearch; see --list)",
    )
    p_faults.add_argument(
        "--list", action="store_true", help="list the named fault plans"
    )
    p_faults.add_argument("--seed", type=int, default=0,
                          help="search + fault-plan seed")
    p_faults.add_argument("--radius", type=int, nargs="+", default=[5, 10])
    p_faults.add_argument(
        "--max-restarts", type=int, default=5,
        help="restart budget after crashes/aborts (default 5)",
    )
    p_faults.add_argument(
        "--checkpoint", type=Path, metavar="CK.json",
        help="checkpoint rotation path (default: a temporary directory)",
    )
    p_faults.add_argument(
        "--verify", action="store_true",
        help="also run the search fault-free and check the survivor "
             "reached the same topology and likelihood (1e-8)",
    )
    _add_backend_flag(p_faults)
    _add_trace_flag(p_faults)
    _add_obs_flags(p_faults)

    p_trace = sub.add_parser(
        "trace", help="validate + summarise a saved Chrome trace"
    )
    p_trace.add_argument(
        "trace_file", type=Path, help="Chrome trace JSON (from --trace)"
    )
    p_trace.add_argument(
        "--top", type=int, default=15,
        help="rows in the self-time table, wave timeline, and hottest "
             "folded-stack paths (default 15)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run benchmark suites into the perf ledger / diff snapshots",
    )
    p_bench.add_argument(
        "suites", nargs="*", metavar="SUITE",
        help="benchmark suites to run (see --list); none = just "
             "--import/--compare bookkeeping",
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list the runnable suites"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="pass --quick to each suite (CI-sized workloads)",
    )
    p_bench.add_argument(
        "--ledger", type=Path, default=Path("PERF_LEDGER.json"),
        metavar="LEDGER.json",
        help="ledger file to append to / compare as current "
             "(default PERF_LEDGER.json)",
    )
    p_bench.add_argument(
        "--import", dest="import_reports", type=Path, nargs="+",
        metavar="BENCH.json", default=[],
        help="ingest legacy BENCH_*.json reports into the ledger",
    )
    p_bench.add_argument(
        "--compare", type=Path, metavar="BASELINE.json",
        help="diff a baseline ledger against --current (default: the "
             "--ledger file) and exit nonzero on regressions",
    )
    p_bench.add_argument(
        "--current", type=Path, metavar="CURRENT.json",
        help="ledger treated as 'current' for --compare "
             "(default: the --ledger file)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="relative regression threshold for --compare "
             "(default 0.10 = 10%%)",
    )
    p_bench.add_argument(
        "--report-only", action="store_true",
        help="with --compare: print regressions but always exit 0 "
             "(advisory CI lanes)",
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .phylo import simulate_dataset, write_phylip

    sim = simulate_dataset(
        n_taxa=args.taxa, n_sites=args.sites, seed=args.seed,
        alpha=args.alpha if args.alpha > 0 else None,
    )
    write_phylip(sim.alignment, args.out)
    print(f"wrote {args.out} ({args.taxa} taxa x {args.sites} sites)")
    if args.tree_out:
        from .util import atomic_write_text

        atomic_write_text(args.tree_out, sim.tree.to_newick() + "\n")
        print(f"wrote {args.tree_out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .faults.plan import InjectedCrash
    from .phylo import read_alignment
    from .search import SearchConfig, load_latest_checkpoint, ml_search

    alignment = read_alignment(args.alignment)
    print(
        f"read {alignment.n_taxa} taxa x {alignment.n_sites} sites "
        f"from {args.alignment}"
    )
    starting_tree = None
    if args.start == "nj":
        from .phylo.distance import jc_distance, neighbor_joining

        d, taxa = jc_distance(alignment)
        starting_tree = neighbor_joining(d, taxa)
        print("starting tree: neighbor joining on JC distances")

    checkpoint_path = args.checkpoint
    resume_from = None
    if args.resume is not None:
        resume_from, slot = load_latest_checkpoint(
            args.resume, keep=args.checkpoint_keep
        )
        print(
            f"resuming from {slot} "
            f"(stage {resume_from.stage!r}, step {resume_from.step}"
            + (
                f", lnL {resume_from.lnl:.4f})"
                if resume_from.lnl is not None
                else ")"
            )
        )
        if checkpoint_path is None:
            checkpoint_path = args.resume  # keep snapshotting the same rotation

    fault_plan = None
    if args.fault_plan:
        from .faults.plans import make_plan

        fault_plan = make_plan(args.fault_plan, seed=args.fault_seed)
        print(f"fault plan: {fault_plan!r}")

    if args.workers > 1:
        print(f"parallel: {args.workers} workers, execution={args.execution}")

    try:
        result = ml_search(
            alignment,
            starting_tree=starting_tree,
            config=SearchConfig(
                radii=tuple(args.radius),
                seed=args.seed,
                optimize_exchangeabilities=not args.no_rates,
                branch_opt_method=args.branch_opt,
                checkpoint_path=checkpoint_path,
                checkpoint_every=args.checkpoint_every,
                checkpoint_keep=args.checkpoint_keep,
            ),
            backend=args.backend,
            resume_from=resume_from,
            fault_plan=fault_plan,
            workers=args.workers,
            execution=args.execution,
        )
    except InjectedCrash as crash:
        print(f"search died: {crash}")
        if checkpoint_path is not None:
            print(f"resume with: repro search {args.alignment} "
                  f"--resume {checkpoint_path}")
        return 3
    print(f"final lnL: {result.lnl:.4f}")
    print(f"alpha:     {result.alpha:.4f}")
    print(
        "rates:     "
        + " ".join(f"{x:.4f}" for x in result.model.exchangeabilities)
    )
    if args.out:
        from .util import atomic_write_text

        atomic_write_text(args.out, result.newick + "\n")
        print(f"wrote {args.out}")
    else:
        print(result.newick)
    if args.draw:
        from .phylo.draw import ascii_tree

        print(ascii_tree(result.tree))
    if args.workers > 1:
        stats = getattr(result.engine, "barrier_stats", None)
        if stats is not None and stats.regions:
            print(
                f"parallel regions: {stats.regions} "
                f"(mean overhead {stats.mean_region_overhead_s * 1e6:.1f} us)"
            )
        close = getattr(result.engine, "close", None)
        if callable(close):
            close()
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from .phylo import GammaRates, Tree, gtr, read_alignment, read_fasta
    from .search.epa import place_queries, to_jplace

    reference = read_alignment(args.reference)
    tree = Tree.from_newick(args.tree.read_text())
    query_aln = read_fasta(args.queries)
    queries = {t: query_aln.sequence(t) for t in query_aln.taxa}
    if args.workers > 1:
        print(f"parallel: {args.workers} workers, execution={args.execution}")
    results = place_queries(
        reference, tree, queries, gtr(), GammaRates(1.0, 4),
        keep_best=args.best, backend=args.backend,
        workers=args.workers, execution=args.execution,
    )
    for result in results:
        best = result.best
        print(
            f"{result.query}: branch toward [{','.join(best.edge_label)}] "
            f"lnL {best.log_likelihood:.2f} LWR {best.weight_ratio:.3f}"
        )
    if args.out:
        from .util import atomic_write_text

        atomic_write_text(
            args.out, json.dumps(to_jplace(results, tree), indent=2)
        )
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .phylo import Tree, read_alignment
    from .serve import PlacementServer

    if bool(args.ref) != bool(args.aln):
        print("--ref and --aln must be given together", file=sys.stderr)
        return 2
    server = PlacementServer(
        port=args.port,
        host=args.host,
        max_batch=args.max_batch,
        batch_wait_s=args.batch_wait_ms / 1000.0,
        max_tenants=args.max_tenants,
        keep_best=args.keep_best,
        max_resident=args.max_resident,
        backend=args.backend,
        workers=args.workers,
        execution=args.execution,
        allow_fault_injection=args.allow_fault_injection,
    )
    try:
        if args.ref:
            tenant = server.add_tenant(
                args.name,
                read_alignment(args.aln),
                Tree.from_newick(args.ref.read_text()),
            )
            print(
                f"tenant {args.name!r}: {tenant.session.reference.n_taxa} "
                f"reference taxa, lnL {tenant.session.reference_lnl:.2f}"
            )
        print(f"placement server listening on {server.url}")
        # SIGTERM must tear down like Ctrl-C: worker pools hold
        # /dev/shm arena segments that only unlink on server.stop().
        import signal

        def _terminate(signum, frame):  # pragma: no cover - signal path
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGTERM, _terminate)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            signal.signal(signal.SIGTERM, previous)
    finally:
        server.stop()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .phylo import read_alignment
    from .phylo.stats import alignment_stats

    print(alignment_stats(read_alignment(args.alignment)).summary())
    return 0


def _print_metrics_snapshot() -> None:
    """Print the metrics-registry snapshot when tracing is enabled."""
    from . import obs

    if not obs.is_enabled():
        return
    snap = obs.get_registry().snapshot()
    print(f"\nmetrics registry ({len(snap)} series):")
    if not snap:
        print("  (empty — nothing instrumented has run yet)")
        return
    width = max(len(name) for name in snap)
    for name, entry in sorted(snap.items()):
        if entry["type"] == "histogram":
            print(
                f"  {name:<{width}}  histogram  count={entry['count']} "
                f"sum={entry['sum']:.6g}"
            )
        else:
            print(f"  {name:<{width}}  {entry['type']:<9}  {entry['value']:g}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        load_chrome,
        render_summary,
        summarize_chrome,
        validate_chrome,
    )

    payload = load_chrome(args.trace_file)
    problems = validate_chrome(payload)
    if problems:
        print(f"{args.trace_file}: INVALID trace ({len(problems)} problems)")
        for p in problems[:20]:
            print(f"  {p}")
        if len(problems) > 20:
            print(f"  ... and {len(problems) - 20} more")
        return 1
    print(f"{args.trace_file}: valid Chrome trace")
    print()
    summary = summarize_chrome(payload)
    print(render_summary(summary, top=args.top), end="")
    if summary.folded:
        from .obs import render_hot_paths

        print()
        print(render_hot_paths(summary, n=args.top), end="")
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    import inspect
    import os

    from .core.backends import DEFAULT_BACKEND_ENV, available_backends

    infos = available_backends()
    names = [info.name for info in infos]
    env = os.environ.get(DEFAULT_BACKEND_ENV)
    default = env if env is not None else "reference"
    source = f"${DEFAULT_BACKEND_ENV}" if env is not None else "built-in default"
    print(f"process default: {default}  (from {source})")
    if default not in names:
        print(
            f"warning: {default!r} is not a registered backend — "
            "engine construction will fail until it is fixed"
        )
    print()
    width = max(len(n) for n in names)
    for info in infos:
        marker = "*" if info.name == default else " "
        print(f"{marker} {info.name:<{width}}  {info.description}")
        doc = inspect.getdoc(info.factory)
        first = doc.splitlines()[0].strip() if doc else ""
        if first and first != info.description:
            print(f"  {'':<{width}}  {first}")
    print(f"\n(* = process default; override with ${DEFAULT_BACKEND_ENV} "
          "or --backend)")

    from .parallel.forkjoin import (
        EXEC_ENV,
        EXECUTION_MODES,
        WORKERS_ENV,
        default_execution,
        default_workers,
    )

    w_env = os.environ.get(WORKERS_ENV)
    x_env = os.environ.get(EXEC_ENV)
    w_src = f"${WORKERS_ENV}" if w_env is not None else "built-in default"
    x_src = f"${EXEC_ENV}" if x_env is not None else "built-in default"
    print("\nparallel execution:")
    print(f"  workers: {default_workers()}  (from {w_src})")
    print(f"  exec:    {default_execution()}  (from {x_src})")
    print(f"  modes:   {', '.join(EXECUTION_MODES)}")
    print(f"  (override with ${WORKERS_ENV}/${EXEC_ENV} or --workers/--exec "
          "on 'repro search' and 'repro place')")

    from .core.ckernels import probe_status

    status = probe_status()
    print("\ncompiled backend:")
    if status.available:
        print(f"  compiler: {status.compiler}")
        print(f"  flags:    {' '.join(status.flags)}")
    else:
        print("  unavailable — engines fall back to 'blocked'")
        print(f"  reason:   {status.reason}")
    print(f"  cache:    {status.cache_dir}")
    if status.cached_objects:
        print(f"  objects:  {len(status.cached_objects)} cached "
              f"({', '.join(status.cached_objects[:4])}"
              f"{', ...' if len(status.cached_objects) > 4 else ''})")
    else:
        print("  objects:  none cached yet (compiled at first use)")

    from .perf.autotune import TUNE_CACHE_ENV, TuningCache, default_cache_path

    tune_cache = TuningCache()
    entries = tune_cache.entries()
    t_src = (
        f"${TUNE_CACHE_ENV}"
        if os.environ.get(TUNE_CACHE_ENV)
        else "built-in default"
    )
    print("\nautotune cache:")
    print(f"  path:     {default_cache_path()}  (from {t_src})")
    if entries:
        print(f"  entries:  {len(entries)} tuned workload(s) — "
              "see 'repro tune --show'")
    else:
        print("  entries:  none yet ('repro tune' or --backend auto "
              "populates it)")
    _print_metrics_snapshot()
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .perf.autotune import (
        TuningCache,
        WorkloadSignature,
        autotune,
        default_cache_path,
    )

    cache = TuningCache()
    if args.show:
        entries = cache.entries()
        print(f"tuning cache: {default_cache_path()}")
        if not entries:
            print("  (empty — run 'repro tune' or '--backend auto')")
            return 0
        for key in sorted(entries):
            entry = entries[key]
            chosen = entry.get("chosen", {})
            label = chosen.get("backend", "?")
            if chosen.get("block_sites"):
                label += f" block={chosen['block_sites']}"
            if chosen.get("workers", 1) > 1:
                label += f" {chosen['execution']}x{chosen['workers']}"
            print(f"  {key:<22s} -> {label:<28s} "
                  f"predicted {entry.get('predicted_s', 0.0):.4g}s "
                  f"(default {entry.get('default_predicted_s', 0.0):.4g}s)")
        return 0

    signature = WorkloadSignature.from_workload(
        args.sites, args.states, args.rates
    )
    print(f"tuning {signature.key} "
          f"(sites={args.sites}, states={args.states}, rates={args.rates})")
    decision = autotune(
        signature, cache=cache, refresh=args.refresh, rounds=args.rounds
    )
    if not decision.candidates:
        # cache hit: the stored decision has no candidate table
        print(f"cache hit: {decision.chosen.label} "
              f"(predicted {decision.predicted_s:.4g}s; "
              "use --refresh to re-probe)")
        return 0
    print(f"\n  {'configuration':<28s} {'predicted':>12s} {'probe':>12s}")
    for cand in decision.candidates:
        measured = (
            f"{cand.measured_probe_s:.5f}s"
            if cand.measured_probe_s is not None
            else "-"
        )
        marker = "*" if cand.config == decision.chosen else " "
        print(f"{marker} {cand.config.label:<28s} "
              f"{cand.predicted_s:>11.5f}s {measured:>12s}")
    print(f"\nchosen: {decision.chosen.label} "
          f"(predicted {decision.predicted_s:.4g}s vs default "
          f"{decision.default_predicted_s:.4g}s)")
    print(f"cached in {cache.path} — 'repro ... --backend auto' applies it")
    return 0


def _show_plan(plan, title: str) -> None:
    """Print one levelized plan as a per-wave table plus a summary."""
    print(title)
    if not plan.waves:
        print("  (empty plan: every required CLA is already valid)")
        return
    print(f"  {'wave':>4}  {'width':>5}  kernel mix")
    for wave in plan.waves:
        mix = ", ".join(
            f"{kind.value} x{n}"
            for kind, n in sorted(
                wave.kernel_mix().items(), key=lambda kv: kv[0].value
            )
        )
        print(f"  {wave.index:>4}  {wave.width:>5}  {mix}")
    print(
        f"  {plan.n_ops} ops in {plan.depth} waves "
        f"(max width {plan.max_width}, mean width {plan.mean_width:.2f})"
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    import numpy as np

    from .core.engine import LikelihoodEngine
    from .phylo import GammaRates, Tree, gtr, read_alignment

    alignment = read_alignment(args.alignment)
    patterns = alignment.compress()
    print(
        f"read {alignment.n_taxa} taxa x {alignment.n_sites} sites "
        f"({patterns.n_patterns} patterns) from {args.alignment}"
    )
    if args.tree:
        tree = Tree.from_newick(args.tree.read_text())
    else:
        from .phylo.distance import jc_distance, neighbor_joining

        d, taxa = jc_distance(alignment)
        tree = neighbor_joining(d, taxa)
        print("tree: neighbor joining on JC distances")
    backend = args.backend
    if backend == "auto":
        from .perf.autotune import resolve_auto_backend

        backend = resolve_auto_backend(patterns.n_patterns, 4, 4)
    engine = LikelihoodEngine(
        patterns, tree, gtr(), GammaRates(1.0, 4), backend=backend
    )
    batched = getattr(engine.backend, "newview_batch", None) is not None
    print(
        f"backend: {type(engine.backend).__name__} "
        f"({'stacked' if batched else 'per-op'} wave dispatch)\n"
    )
    root = engine.default_edge()
    _show_plan(engine.plan_execution(root), f"full traversal (root edge {root}):")
    if args.derivatives:
        from .perf import XEON_PHI_5110P_1S, CostModel, wave_schedule_costs

        gplan = engine.plan_gradient(root)
        print()
        _show_plan(
            gplan.up,
            f"gradient up-sweep (root edge {root}, pre-order + edge gradients):",
        )
        model = CostModel(XEON_PHI_5110P_1S)

        def _plan_summary(plan) -> dict:
            mix: dict[str, int] = {}
            for wave in plan.waves:
                for kind, n in wave.kernel_mix().items():
                    mix[kind.value] = mix.get(kind.value, 0) + n
            return {
                "waves": plan.depth,
                "ops": plan.n_ops,
                "kernel_mix": mix,
            }

        print(f"\nmodelled wave cost ({model.platform.name}, batched):")
        for label, plan in (("down-sweep", gplan.down), ("up-sweep", gplan.up)):
            costs = wave_schedule_costs(
                model, _plan_summary(plan), sites=alignment.n_sites
            )
            print(
                f"  {label:>10}: {costs['batched_total_s'] * 1e3:9.3f} ms "
                f"batched vs {costs['per_op_total_s'] * 1e3:9.3f} ms per-op "
                f"(saving {costs['batch_saving_s'] * 1e3:.3f} ms)"
            )
    if args.move != "none":
        rng = np.random.default_rng(args.seed)
        engine.log_likelihood(root)  # validate every CLA first
        if args.move == "nni":
            internal = [
                eid for eid in tree.edge_ids
                if not tree.is_leaf(tree.edge(eid).u)
                and not tree.is_leaf(tree.edge(eid).v)
            ]
            eid = internal[int(rng.integers(len(internal)))]
            tree.nni_swap(eid, int(rng.integers(2)))
            desc = f"NNI across edge {eid}"
        else:
            targets: list[int] = []
            pend = -1
            for _ in range(200):
                edge_ids = tree.edge_ids
                pend = edge_ids[int(rng.integers(len(edge_ids)))]
                targets = tree.spr_candidates(pend, radius=5)
                if targets:
                    break
            if not targets:
                print("no valid SPR move found")
                return 1
            target = targets[int(rng.integers(len(targets)))]
            tree.spr(pend, target)
            desc = f"SPR pruning edge {pend}, regrafting onto edge {target}"
        print()
        _show_plan(
            engine.plan_execution(engine.default_edge()),
            f"incremental replan after {desc}:",
        )
    _print_metrics_snapshot()
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults.plans import available_plans, make_plan

    if args.list:
        plans = available_plans()
        width = max(len(info.name) for info in plans)
        for info in plans:
            print(f"  {info.name:<{width}}  {info.description}")
        return 0
    if args.alignment is None:
        print("error: an alignment file is required (or use --list)")
        return 2

    from .faults.runner import run_search_with_faults
    from .phylo import read_alignment
    from .search import SearchConfig

    alignment = read_alignment(args.alignment)
    print(
        f"read {alignment.n_taxa} taxa x {alignment.n_sites} sites "
        f"from {args.alignment}"
    )
    plan = make_plan(args.plan, seed=args.seed)
    print(f"fault plan: {plan!r}")
    report = run_search_with_faults(
        alignment,
        plan,
        SearchConfig(
            radii=tuple(args.radius),
            seed=args.seed,
            checkpoint_path=args.checkpoint,
        ),
        backend=args.backend,
        max_restarts=args.max_restarts,
        verify=args.verify,
    )
    fired = ", ".join(
        f"{k} x{v}" for k, v in sorted(report.fault_summary.items())
    ) or "none"
    print(f"faults fired:  {fired}")
    print(f"crashes:       {report.crashes}  (aborts: {report.aborts})")
    print(f"restarts:      {report.restarts} (budget {args.max_restarts})")
    print(f"checkpoints:   {report.checkpoint_path}")
    if report.survived:
        print(f"survived:      yes  (final lnL {report.lnl:.4f})")
    else:
        print("survived:      NO — restart budget exhausted")
        return 1
    if args.verify:
        print(
            f"verify:        baseline lnL {report.baseline_lnl:.4f}, "
            f"|delta| {report.lnl_delta:.3e}, "
            f"topology {'match' if report.topology_match else 'MISMATCH'}"
        )
        if not report.verified:
            print("verify:        FAILED — survivor diverged from baseline")
            return 1
        print("verify:        OK (same topology, lnL to 1e-8)")
    _print_metrics_snapshot()
    return 0


def _cmd_kernels(_args: argparse.Namespace) -> int:
    from .harness.figure3 import render_figure3

    print(render_figure3())
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .parallel import ExaMLModel, examl_cpu, examl_mic_hybrid
    from .perf import (
        DEFAULT_TRACE,
        XEON_E5_2630_2S,
        XEON_E5_2680_2S,
        XEON_PHI_5110P_1S,
        XEON_PHI_5110P_2S,
        energy_wh,
    )

    systems = {
        "cpu2630": (XEON_E5_2630_2S, examl_cpu(XEON_E5_2630_2S)),
        "cpu2680": (XEON_E5_2680_2S, examl_cpu(XEON_E5_2680_2S)),
        "mic1": (XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1)),
        "mic2": (XEON_PHI_5110P_2S, examl_mic_hybrid(n_cards=2)),
    }
    spec, config = systems[args.system]
    model = ExaMLModel(spec, config)
    pred = model.predict(DEFAULT_TRACE, args.sites)
    base = ExaMLModel(XEON_E5_2680_2S, examl_cpu(XEON_E5_2680_2S)).predict(
        DEFAULT_TRACE, args.sites
    )
    print(f"system:   {spec.name}  ({config.name})")
    print(f"sites:    {args.sites}")
    print(f"time:     {pred.total_s:.2f} s   "
          f"(compute {pred.compute_s:.2f}, sync {pred.sync_s:.2f}, "
          f"serial {pred.serial_s:.2f}, ramp {pred.ramp_s:.2f}, "
          f"comm {pred.comm_s:.2f})")
    print(f"speedup vs 2S E5-2680: {base.total_s / pred.total_s:.2f}x")
    print(f"energy:   {energy_wh(spec, pred.total_s):.3f} Wh")
    fits = model.fits_in_memory(args.sites, DEFAULT_TRACE.n_taxa)
    print(f"fits in {spec.memory_gb:.0f} GB memory: {fits}")
    return 0


#: Runnable ``repro bench`` suites: name -> script under ``benchmarks/``.
#: Each script exposes ``main(argv)`` accepting ``--quick``/``--out``.
BENCH_SUITES = {
    "obs": "bench_obs.py",
    "backends": "bench_backends.py",
    "scheduler": "bench_scheduler.py",
    "gradients": "bench_gradients.py",
    "parallel": "bench_parallel.py",
    "serving": "bench_serving.py",
}


def _run_bench_suite(name: str, quick: bool) -> dict:
    """Execute one benchmark script in-process; returns its JSON report.

    The scripts live in ``benchmarks/`` (not an installed package), so
    they are loaded by file path.  The report is written to a temporary
    file and read back — the scripts' only stable output contract.
    """
    import importlib.util
    import tempfile

    script = Path(__file__).resolve().parents[2] / "benchmarks" / BENCH_SUITES[name]
    if not script.exists():
        raise FileNotFoundError(f"benchmark script not found: {script}")
    spec = importlib.util.spec_from_file_location(f"bench_{name}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "report.json"
        argv = ["--out", str(out)]
        if quick:
            argv.append("--quick")
        rc = module.main(argv)
        if rc not in (0, None):
            raise RuntimeError(f"suite {name!r} exited with {rc}")
        return json.loads(out.read_text())


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.ledger import (
        DEFAULT_THRESHOLD,
        Ledger,
        compare,
        entries_from_report,
        load_report,
        render_compare,
    )

    if args.list:
        width = max(len(n) for n in BENCH_SUITES)
        for name, script in sorted(BENCH_SUITES.items()):
            print(f"  {name:<{width}}  benchmarks/{script}")
        return 0

    for suite in args.suites:
        if suite not in BENCH_SUITES:
            print(
                f"error: unknown suite {suite!r} "
                f"(choose from {', '.join(sorted(BENCH_SUITES))})"
            )
            return 2

    mutated = False
    ledger = (
        Ledger.load(args.ledger) if args.ledger.exists() else Ledger()
    )
    for path in args.import_reports:
        entries = load_report(path)
        ledger.extend(entries)
        mutated = True
        print(f"imported {path}: {len(entries)} entries")

    for suite in args.suites:
        print(f"running suite {suite!r}{' (quick)' if args.quick else ''} ...")
        report = _run_bench_suite(suite, quick=args.quick)
        entries = entries_from_report(report, source=f"repro bench {suite}")
        ledger.extend(entries)
        mutated = True
        print(f"  -> {len(entries)} ledger entries")

    if mutated:
        ledger.save(args.ledger)
        print(f"ledger: {args.ledger} ({len(ledger)} entries total)")

    if args.compare is not None:
        baseline = Ledger.load(args.compare)
        current_path = args.current or args.ledger
        current = Ledger.load(current_path)
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        regressions, deltas = compare(baseline, current, threshold=threshold)
        print(
            f"baseline {args.compare} ({len(baseline)} entries) vs "
            f"current {current_path} ({len(current)} entries)"
        )
        print(render_compare(regressions, deltas, threshold), end="")
        if regressions and not args.report_only:
            return 1
        if regressions:
            print("(report-only mode: not failing)")
    elif not mutated and not args.suites:
        print("nothing to do (no suites, --import, or --compare given)")
    return 0


_HANDLERS = {
    "simulate": _cmd_simulate,
    "search": _cmd_search,
    "place": _cmd_place,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "backends": _cmd_backends,
    "tune": _cmd_tune,
    "plan": _cmd_plan,
    "kernels": _cmd_kernels,
    "predict": _cmd_predict,
    "faults": _cmd_faults,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
}


#: Subcommands the environment-driven observability hooks skip: trace
#: and bench analyse artifacts rather than run workloads, and serve
#: manages the obs gate over its own lifetime.
_PASSIVE_COMMANDS = ("trace", "bench", "serve")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    When ``--trace OUT.json`` is given (search/place/faults) or the
    ``REPRO_TRACE`` environment variable names a path (any subcommand
    except the passive ones), the whole run executes with tracing
    enabled and the Chrome trace is written on the way out — even when
    the handler raises, so a crashed search still leaves its timeline
    behind.  ``--serve-metrics PORT`` / ``REPRO_METRICS_PORT`` likewise
    wraps the run in a live HTTP endpoint, and ``--profile OUT.folded``
    / ``REPRO_PROFILE`` in a sampling profiler; all three tear down in
    the same ``finally``.
    """
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    serve_port = getattr(args, "serve_metrics", None)
    profile_path = getattr(args, "profile", None)
    if args.command not in _PASSIVE_COMMANDS:
        if trace_path is None:
            from .obs.spans import env_trace_path

            trace_path = env_trace_path()
        if serve_port is None:
            from .obs.server import env_port

            serve_port = env_port()
        if profile_path is None:
            from .obs.profiler import env_profile_path

            profile_path = env_profile_path()

    if trace_path is None and serve_port is None and profile_path is None:
        return _HANDLERS[args.command](args)

    from . import obs

    server = None
    profiler = None
    if trace_path is not None:
        obs.enable(description=f"repro {args.command}")
    if serve_port is not None:
        server = obs.serve(port=serve_port)
        print(
            f"serving live metrics at {server.url} "
            "(/metrics /healthz /progress)"
        )
    if profile_path is not None:
        from .obs.profiler import env_profile_hz

        hz = getattr(args, "profile_hz", None) or env_profile_hz()
        profiler = obs.SamplingProfiler(hz=hz).start()
    try:
        return _HANDLERS[args.command](args)
    finally:
        if profiler is not None:
            profiler.stop()
            out = profiler.write(profile_path)
            print(
                f"wrote profile: {out} ({profiler.n_samples} samples at "
                f"{profiler.hz:g} Hz; flamegraph.pl/speedscope-ready)"
            )
        if server is not None:
            server.stop()
        if trace_path is not None:
            tracer = obs.get_tracer()
            out = obs.write_chrome(tracer, trace_path)
            print(
                f"wrote trace: {out} ({tracer.n_events} events; "
                f"inspect with 'repro trace {out}' or ui.perfetto.dev)"
            )
            obs.disable()


if __name__ == "__main__":
    sys.exit(main())
