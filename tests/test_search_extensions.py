"""Tests for bootstrap, NNI search, checkpointing, and PAML matrices."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.phylo import GammaRates, Tree, gtr, poisson_protein, random_topology, simulate_dataset
from repro.phylo.protein_models import load_paml_matrix, save_paml_matrix
from repro.search.bootstrap import (
    bootstrap_analysis,
    bootstrap_weights,
    support_values,
)
from repro.search.checkpoint import (
    Checkpoint,
    load_checkpoint,
    resume_engine,
    save_checkpoint,
)
from repro.search.nni import nni_round, nni_search


@pytest.fixture(scope="module")
def base_case():
    sim = simulate_dataset(n_taxa=8, n_sites=500, seed=61)
    pat = sim.alignment.compress()
    return sim, pat


class TestBootstrapWeights:
    def test_preserve_total_sites(self, base_case):
        _, pat = base_case
        rng = np.random.default_rng(0)
        w = bootstrap_weights(pat, rng)
        assert w.sum() == pat.weights.sum()
        assert np.all(w >= 0)

    def test_replicates_differ(self, base_case):
        _, pat = base_case
        rng = np.random.default_rng(0)
        w1 = bootstrap_weights(pat, rng)
        w2 = bootstrap_weights(pat, rng)
        assert not np.array_equal(w1, w2)

    def test_expectation_matches_original(self, base_case):
        _, pat = base_case
        rng = np.random.default_rng(1)
        mean = np.mean([bootstrap_weights(pat, rng) for _ in range(300)], axis=0)
        np.testing.assert_allclose(mean, pat.weights, rtol=0.3, atol=1.0)


class TestSupportValues:
    def test_identical_replicates_give_full_support(self, base_case):
        sim, _ = base_case
        support = support_values(sim.tree, [sim.tree.copy() for _ in range(5)])
        assert all(v == 1.0 for v in support.values())

    def test_random_replicates_give_low_support(self, base_case):
        sim, _ = base_case
        rng_trees = [
            random_topology(sorted(sim.tree.leaf_names()), np.random.default_rng(s))
            for s in range(10)
        ]
        support = support_values(sim.tree, rng_trees)
        assert min(support.values()) < 1.0

    def test_empty_replicates_rejected(self, base_case):
        sim, _ = base_case
        with pytest.raises(ValueError, match="replicate"):
            support_values(sim.tree, [])


class TestBootstrapAnalysis:
    def test_strong_signal_gives_high_support(self, base_case):
        sim, pat = base_case
        result = bootstrap_analysis(
            pat, sim.tree, gtr(), GammaRates(1.0, 4),
            n_replicates=5, seed=3,
        )
        assert len(result.replicate_trees) == 5
        # 500 sites on 8 taxa is a strong signal; most splits well supported
        assert result.min_support() >= 0.6

    def test_replicate_count_validated(self, base_case):
        sim, pat = base_case
        with pytest.raises(ValueError, match="replicate"):
            bootstrap_analysis(pat, sim.tree, gtr(), n_replicates=0)

    def test_consensus_of_replicates(self, base_case):
        sim, pat = base_case
        result = bootstrap_analysis(
            pat, sim.tree, gtr(), GammaRates(1.0, 4),
            n_replicates=4, seed=11,
        )
        consensus, support = result.consensus()
        assert sorted(consensus.leaf_names()) == sorted(pat.taxa)
        # strong-signal data: the consensus should be well resolved and
        # close to the ML/true topology
        assert len(consensus.splits()) >= 3
        assert all(0.5 < v <= 1.0 for v in support.values())


class TestNni:
    def test_round_improves_bad_tree(self, base_case):
        sim, pat = base_case
        bad = random_topology(list(pat.taxa), np.random.default_rng(5))
        engine = LikelihoodEngine(pat, bad, gtr(), GammaRates(1.0, 4))
        from repro.search import optimize_all_branches

        optimize_all_branches(engine, passes=1)
        stats = nni_round(engine)
        assert stats.lnl_after >= stats.lnl_before
        assert stats.moves_tried > 0

    def test_search_reaches_local_optimum(self, base_case):
        sim, pat = base_case
        bad = random_topology(list(pat.taxa), np.random.default_rng(6))
        engine = LikelihoodEngine(pat, bad, gtr(), GammaRates(1.0, 4))
        from repro.search import optimize_all_branches

        optimize_all_branches(engine, passes=1)
        history = nni_search(engine, max_rounds=8)
        assert history[-1].moves_accepted == 0  # converged
        lnls = [h.lnl_after for h in history]
        assert all(b >= a - 1e-6 for a, b in zip(lnls, lnls[1:]))

    def test_true_tree_is_nni_optimal(self, base_case):
        sim, pat = base_case
        engine = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(1.0, 4))
        from repro.search import optimize_all_branches

        optimize_all_branches(engine, passes=2)
        stats = nni_round(engine, epsilon=0.1)
        assert stats.moves_accepted == 0


class TestCheckpoint:
    def test_roundtrip_restores_lnl(self, base_case, tmp_path):
        sim, pat = base_case
        engine = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(0.7, 4))
        from repro.search import optimize_all_branches

        lnl = optimize_all_branches(engine, passes=1)
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(engine, path, lnl=lnl, stage="branch_opt")
        ckpt = load_checkpoint(path)
        assert ckpt.stage == "branch_opt"
        resumed = resume_engine(pat, ckpt)
        assert resumed.log_likelihood() == pytest.approx(lnl, abs=1e-6)

    def test_taxon_mismatch_detected(self, base_case, tmp_path):
        sim, pat = base_case
        engine = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(0.7, 4))
        path = tmp_path / "x.json"
        ckpt = save_checkpoint(engine, path)
        other = simulate_dataset(n_taxa=5, n_sites=40, seed=1).alignment.compress()
        with pytest.raises(ValueError, match="taxa"):
            resume_engine(other, ckpt)

    def test_version_check(self):
        import json

        bad = json.dumps({"format_version": 99})
        with pytest.raises(ValueError, match="format"):
            Checkpoint.from_json(bad)


class TestPamlMatrices:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(7)
        model = poisson_protein().with_parameters(
            exchangeabilities=rng.uniform(0.1, 5.0, size=190),
            frequencies=rng.dirichlet(np.ones(20) * 10),
        )
        path = tmp_path / "custom.dat"
        save_paml_matrix(model, path)
        loaded = load_paml_matrix(path)
        np.testing.assert_allclose(
            loaded.exchangeabilities, model.exchangeabilities, rtol=1e-5
        )
        np.testing.assert_allclose(loaded.frequencies, model.frequencies, atol=1e-6)

    def test_loaded_model_usable_in_engine(self, tmp_path):
        from repro.phylo import simulate_alignment

        rng = np.random.default_rng(8)
        model = poisson_protein().with_parameters(
            exchangeabilities=rng.uniform(0.5, 2.0, size=190)
        )
        path = tmp_path / "m.dat"
        save_paml_matrix(model, path)
        loaded = load_paml_matrix(path, name="CUSTOM")
        assert loaded.name == "CUSTOM"
        tree = Tree.from_newick("((a:0.2,b:0.2):0.1,(c:0.2,d:0.2):0.1);")
        sim = simulate_alignment(tree, loaded, 50, rng)
        engine = LikelihoodEngine(sim.alignment.compress(), tree, loaded)
        assert np.isfinite(engine.log_likelihood())

    def test_comments_and_wrapping_tolerated(self, tmp_path):
        rng = np.random.default_rng(9)
        model = poisson_protein().with_parameters(
            exchangeabilities=rng.uniform(0.1, 3.0, size=190)
        )
        path = tmp_path / "wrapped.dat"
        save_paml_matrix(model, path)
        # re-wrap arbitrarily and add comments
        numbers = path.read_text().split()
        wrapped = "# synthetic matrix\n"
        for i in range(0, len(numbers), 7):
            wrapped += " ".join(numbers[i : i + 7]) + "\n"
        path.write_text(wrapped)
        loaded = load_paml_matrix(path)
        np.testing.assert_allclose(
            loaded.exchangeabilities, model.exchangeabilities, rtol=1e-5
        )

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.dat"
        path.write_text("1.0 2.0 3.0\n")
        with pytest.raises(ValueError, match="190"):
            load_paml_matrix(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1.0 oops\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_paml_matrix(path)
