"""Tests for distance matrices, neighbor joining, stats, model selection."""

import numpy as np
import pytest

from repro.phylo import (
    Alignment,
    Tree,
    alignment_stats,
    jc_distance,
    k2p_distance,
    neighbor_joining,
    p_distance,
    simulate_dataset,
)
from repro.search import ml_search, SearchConfig, select_model


class TestPDistance:
    def test_identical_sequences_zero(self):
        aln = Alignment.from_sequences({"a": "ACGT", "b": "ACGT"})
        d, taxa = p_distance(aln)
        assert d[0, 1] == 0.0

    def test_all_different(self):
        aln = Alignment.from_sequences({"a": "AAAA", "b": "CCCC"})
        d, _ = p_distance(aln)
        assert d[0, 1] == 1.0

    def test_ambiguous_sites_skipped(self):
        aln = Alignment.from_sequences({"a": "ACNN", "b": "AGNN"})
        d, _ = p_distance(aln)
        assert d[0, 1] == pytest.approx(0.5)  # 1 diff of 2 resolved

    def test_no_comparable_sites_raises(self):
        aln = Alignment.from_sequences({"a": "NN", "b": "AC"})
        with pytest.raises(ValueError, match="comparable"):
            p_distance(aln)

    def test_symmetric_zero_diagonal(self):
        sim = simulate_dataset(n_taxa=6, n_sites=200, seed=1)
        d, _ = p_distance(sim.alignment)
        np.testing.assert_array_equal(d, d.T)
        np.testing.assert_array_equal(np.diag(d), 0.0)


class TestCorrections:
    def test_jc_exceeds_p(self):
        sim = simulate_dataset(n_taxa=5, n_sites=500, seed=2)
        p, _ = p_distance(sim.alignment)
        jc, _ = jc_distance(sim.alignment)
        off = ~np.eye(5, dtype=bool)
        assert np.all(jc[off] >= p[off])

    def test_jc_saturation_clamped(self):
        # maximally different sequences: p = 1 -> correction diverges
        aln = Alignment.from_sequences({"a": "AAAA", "b": "CCCC"})
        d, _ = jc_distance(aln)
        assert np.isfinite(d[0, 1])
        assert d[0, 1] == 5.0

    def test_k2p_close_to_jc_for_balanced_changes(self):
        sim = simulate_dataset(n_taxa=5, n_sites=2000, seed=3)
        jc, _ = jc_distance(sim.alignment)
        k2p, _ = k2p_distance(sim.alignment)
        off = ~np.eye(5, dtype=bool)
        ratio = k2p[off] / np.maximum(jc[off], 1e-9)
        assert np.all((ratio > 0.8) & (ratio < 1.4))


class TestNeighborJoining:
    def test_consistent_on_additive_distances(self):
        sim = simulate_dataset(n_taxa=12, n_sites=50, seed=4)
        tree = sim.tree
        leaves = tree.leaves()
        names = [tree.name(l) for l in leaves]
        n = len(leaves)
        d = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                d[i, j] = d[j, i] = sum(
                    tree.edge(e).length
                    for e in tree.path_edges(leaves[i], leaves[j])
                )
        nj = neighbor_joining(d, names)
        assert nj.robinson_foulds(tree) == 0

    def test_branch_lengths_recovered_on_additive_input(self):
        tree = Tree.from_newick("((a:0.1,b:0.2):0.3,(c:0.15,d:0.25):0.05);")
        leaves = tree.leaves()
        names = [tree.name(l) for l in leaves]
        n = len(leaves)
        d = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                d[i, j] = d[j, i] = sum(
                    tree.edge(e).length
                    for e in tree.path_edges(leaves[i], leaves[j])
                )
        nj = neighbor_joining(d, names)
        assert nj.total_branch_length() == pytest.approx(
            tree.total_branch_length(), rel=1e-6
        )

    def test_recovers_topology_from_data(self):
        sim = simulate_dataset(n_taxa=9, n_sites=3000, seed=5)
        d, taxa = jc_distance(sim.alignment)
        nj = neighbor_joining(d, taxa)
        assert nj.robinson_foulds(sim.tree) == 0

    def test_as_ml_starting_tree(self):
        sim = simulate_dataset(n_taxa=7, n_sites=400, seed=6)
        d, taxa = jc_distance(sim.alignment)
        start = neighbor_joining(d, taxa)
        result = ml_search(
            sim.alignment,
            starting_tree=start,
            config=SearchConfig(radii=(3,), max_spr_rounds=2),
        )
        assert result.tree.robinson_foulds(sim.tree) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="symmetric"):
            neighbor_joining(np.array([[0, 1.0], [2.0, 0]]), ["a", "b"])
        with pytest.raises(ValueError, match="taxa"):
            neighbor_joining(np.zeros((3, 3)), ["a", "b"])

    def test_two_and_three_taxa(self):
        d2 = np.array([[0.0, 0.3], [0.3, 0.0]])
        t2 = neighbor_joining(d2, ["a", "b"])
        assert t2.n_leaves == 2
        d3 = np.array([[0, 0.2, 0.3], [0.2, 0, 0.25], [0.3, 0.25, 0]])
        t3 = neighbor_joining(d3, ["a", "b", "c"])
        t3.check()


class TestAlignmentStats:
    def test_composition_matches_generator(self):
        from repro.phylo import Tree, gtr, simulate_alignment

        freqs = np.array([0.4, 0.1, 0.2, 0.3])
        tree = Tree.from_newick("(a:2.0,b:2.0,c:2.0);")
        rng = np.random.default_rng(0)
        sim = simulate_alignment(tree, gtr(np.ones(6), freqs), 20_000, rng)
        stats = alignment_stats(sim.alignment)
        assert stats.base_composition["A"] == pytest.approx(0.4, abs=0.02)
        assert stats.base_composition["T"] == pytest.approx(0.3, abs=0.02)

    def test_constant_and_informative(self):
        aln = Alignment.from_sequences(
            {"a": "AACA", "b": "AACC", "c": "AAGA", "d": "AAGC"}
        )
        stats = alignment_stats(aln)
        assert stats.constant_fraction == pytest.approx(0.5)  # cols 1,2
        # col 3 (C/C/G/G) and col 4 (A/C/A/C) are informative
        assert stats.informative_fraction == pytest.approx(0.5)

    def test_gap_fraction(self):
        aln = Alignment.from_sequences({"a": "AC-N", "b": "ACGT"})
        stats = alignment_stats(aln)
        assert stats.gap_fraction == pytest.approx(2 / 8)

    def test_summary_renders(self):
        sim = simulate_dataset(n_taxa=4, n_sites=100, seed=7)
        text = alignment_stats(sim.alignment).summary()
        assert "patterns" in text


class TestModelSelection:
    @pytest.fixture(scope="class")
    def gtr_data(self):
        # strongly non-JC data: skewed frequencies, strong transition bias
        from repro.phylo import gtr as gtr_model

        return simulate_dataset(
            n_taxa=6,
            n_sites=2000,
            seed=8,
            model=gtr_model(
                np.array([1.0, 8.0, 1.0, 1.0, 8.0, 1.0]),
                np.array([0.4, 0.1, 0.1, 0.4]),
            ),
            alpha=0.3,
        )

    def test_prefers_rich_model_on_gtr_data(self, gtr_data):
        pat = gtr_data.alignment.compress()
        best, fits = select_model(pat, gtr_data.tree, criterion="bic")
        assert "+G" in best.name
        assert best.name.startswith(("GTR", "HKY85", "K80"))
        # JC without gamma must rank worse than the winner
        jc_plain = next(f for f in fits if f.name == "JC69")
        assert jc_plain.bic > best.bic

    def test_fits_sorted_by_criterion(self, gtr_data):
        pat = gtr_data.alignment.compress()
        _, fits = select_model(pat, gtr_data.tree, criterion="aic")
        aics = [f.aic for f in fits]
        assert aics == sorted(aics)

    def test_parameter_counts_ordered(self, gtr_data):
        pat = gtr_data.alignment.compress()
        _, fits = select_model(pat, gtr_data.tree)
        by_name = {f.name: f for f in fits}
        assert by_name["JC69"].n_parameters < by_name["GTR"].n_parameters
        assert by_name["GTR"].n_parameters < by_name["GTR+G"].n_parameters

    def test_unknown_criterion(self, gtr_data):
        pat = gtr_data.alignment.compress()
        with pytest.raises(ValueError, match="criterion"):
            select_model(pat, gtr_data.tree, criterion="magic")

    def test_nested_model_likelihoods_ordered(self, gtr_data):
        """JC <= K80 <= HKY <= GTR in lnL (each nests the previous)."""
        pat = gtr_data.alignment.compress()
        _, fits = select_model(pat, gtr_data.tree)
        by_name = {f.name: f for f in fits}
        tol = 0.6  # small optimiser slack
        assert by_name["K80"].lnl >= by_name["JC69"].lnl - tol
        assert by_name["HKY85"].lnl >= by_name["K80"].lnl - tol
        assert by_name["GTR"].lnl >= by_name["HKY85"].lnl - tol
        assert by_name["GTR+G"].lnl >= by_name["GTR"].lnl - tol
