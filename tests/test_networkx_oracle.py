"""Independent verification of tree invariants using networkx.

Our :class:`~repro.phylo.tree.Tree` implements its own graph
bookkeeping; these tests cross-check it against networkx as an
independent graph oracle — connectivity, acyclicity, path finding, and
patristic distances — on randomly generated and mutated trees.
"""

import networkx as nx
import numpy as np
import pytest

from repro.phylo import Tree, random_topology


def to_networkx(tree: Tree) -> nx.Graph:
    g = nx.Graph()
    for node in tree.nodes:
        g.add_node(node, name=tree.name(node))
    for e in tree.edges:
        g.add_edge(e.u, e.v, weight=e.length, eid=e.id)
    return g


@pytest.fixture(params=[3, 7, 21])
def tree(request):
    rng = np.random.default_rng(request.param)
    n = request.param + 4
    return random_topology([f"t{i}" for i in range(n)], rng)


class TestGraphInvariants:
    def test_is_a_tree(self, tree):
        g = to_networkx(tree)
        assert nx.is_tree(g)

    def test_still_a_tree_after_spr(self, tree):
        leaf = tree.leaves()[0]
        pendant = tree.incident_edges(leaf)[0]
        targets = tree.spr_candidates(pendant, radius=6, subtree_root=leaf)
        if not targets:
            pytest.skip("no SPR targets at this size")
        tree.spr(pendant, targets[-1], subtree_root=leaf)
        assert nx.is_tree(to_networkx(tree))

    def test_path_edges_matches_shortest_path(self, tree):
        g = to_networkx(tree)
        leaves = tree.leaves()
        for u in leaves[:3]:
            for v in leaves[-3:]:
                if u == v:
                    continue
                ours = tree.path_edges(u, v)
                nx_nodes = nx.shortest_path(g, u, v)
                assert len(ours) == len(nx_nodes) - 1
                # same edge set
                nx_eids = {
                    g.edges[a, b]["eid"]
                    for a, b in zip(nx_nodes, nx_nodes[1:])
                }
                assert set(ours) == nx_eids

    def test_patristic_distance_agrees(self, tree):
        g = to_networkx(tree)
        leaves = tree.leaves()
        u, v = leaves[0], leaves[-1]
        ours = sum(tree.edge(e).length for e in tree.path_edges(u, v))
        theirs = nx.shortest_path_length(g, u, v, weight="weight")
        assert ours == pytest.approx(theirs)

    def test_subtree_leaves_match_component(self, tree):
        e = tree.edges[len(tree.edges) // 2]
        g = to_networkx(tree)
        g.remove_edge(e.u, e.v)
        comp_u = nx.node_connected_component(g, e.u)
        ours = set(tree.subtree_leaves(e.u, e.id))
        theirs = {n for n in comp_u if tree.is_leaf(n)}
        assert ours == theirs

    def test_degree_sequence(self, tree):
        g = to_networkx(tree)
        for node in tree.nodes:
            assert tree.degree(node) == g.degree[node]
