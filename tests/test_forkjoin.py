"""Tests for the functional fork-join (RAxML-Light PThreads) engine."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.parallel.forkjoin import ForkJoinEngine
from repro.parallel.pthreads import MIC_PTHREADS
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.search import optimize_all_branches


@pytest.fixture(scope="module")
def problem():
    sim = simulate_dataset(n_taxa=8, n_sites=240, seed=44)
    pat = sim.alignment.compress()
    return sim, pat, gtr(), GammaRates(0.9, 4)


class TestEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4, 7])
    def test_matches_serial(self, problem, threads):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        fj = ForkJoinEngine(pat, sim.tree.copy(), model, gamma, n_threads=threads)
        assert fj.log_likelihood() == pytest.approx(
            serial.log_likelihood(), abs=1e-8
        )

    def test_site_lnl_order(self, problem):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        fj = ForkJoinEngine(pat, sim.tree.copy(), model, gamma, n_threads=3)
        np.testing.assert_allclose(
            fj.site_log_likelihoods(), serial.site_log_likelihoods(), atol=1e-10
        )

    def test_branch_opt_on_forkjoin(self, problem):
        sim, pat, model, gamma = problem
        fj = ForkJoinEngine(pat, sim.tree.copy(), model, gamma, n_threads=3)
        before = fj.log_likelihood()
        after = optimize_all_branches(fj, passes=2)
        assert after >= before


class TestAccounting:
    def test_two_syncs_per_kernel_call(self, problem):
        """The defining property: every kernel call is a parallel region."""
        sim, pat, model, gamma = problem
        fj = ForkJoinEngine(
            pat, sim.tree.copy(), model, gamma, n_threads=4,
            sync_model=MIC_PTHREADS,
        )
        fj.log_likelihood()
        regions_after_lnl = fj.parallel_regions
        assert regions_after_lnl >= 1
        sb = fj.edge_sum_buffer(fj.default_edge())
        fj.branch_derivatives(sb, 0.1)
        assert fj.parallel_regions == regions_after_lnl + 2
        expected = fj.parallel_regions * MIC_PTHREADS.region_overhead_s(4)
        assert fj.sync_seconds == pytest.approx(expected)

    def test_more_sync_than_examl_scheme(self, problem):
        """Fork-join accumulates region cost on newview-heavy workloads
        where ExaML's scheme pays nothing (E9's mechanism)."""
        from repro.parallel import DistributedEngine, SimMPI

        sim, pat, model, gamma = problem
        fj = ForkJoinEngine(
            pat, sim.tree.copy(), model, gamma, n_threads=4,
            sync_model=MIC_PTHREADS,
        )
        mpi = SimMPI(4)
        dist = DistributedEngine(
            pat, sim.tree.copy(), model, gamma, n_ranks=4, mpi=mpi
        )
        optimize_all_branches(fj, passes=1)
        optimize_all_branches(dist, passes=1)
        # fork-join pays 2 barriers per call; ExaML only at reductions
        assert fj.sync_seconds > mpi.comm_seconds

    def test_thread_validation(self, problem):
        sim, pat, model, gamma = problem
        with pytest.raises(ValueError, match="thread"):
            ForkJoinEngine(pat, sim.tree.copy(), model, gamma, n_threads=0)
