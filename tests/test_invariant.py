"""Tests for the GTR+I(+Gamma) invariant-sites model."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.core.invariant import InvariantSitesEngine
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.search import optimize_all_branches
from repro.search.model_opt import optimize_pinv


@pytest.fixture(scope="module")
def setup():
    sim = simulate_dataset(n_taxa=7, n_sites=300, seed=81)
    pat = sim.alignment.compress()
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    return sim, pat, model


class TestCorrectness:
    def test_pinv_zero_equals_plain_engine(self, setup):
        sim, pat, model = setup
        plain = LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(0.7, 4))
        inv = InvariantSitesEngine(
            pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=0.0
        )
        assert inv.log_likelihood() == pytest.approx(
            plain.log_likelihood(), abs=1e-10
        )

    def test_matches_manual_mixture(self, setup):
        """L = p*I + (1-p)*L_gamma, with variable rates scaled 1/(1-p)."""
        sim, pat, model = setup
        p = 0.25
        inv = InvariantSitesEngine(
            pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=p
        )
        lnl_inv = inv.log_likelihood()
        # manual: plain engine with scaled rates gives the Gamma part
        gamma = GammaRates(0.7, 4)
        plain = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        plain.rate_values = plain.rate_values / (1 - p)
        plain._valid.clear()
        lg = plain.site_log_likelihoods()
        # invariant mass per pattern
        mask = pat.data[0].astype(np.uint64)
        for row in pat.data[1:]:
            mask = mask & row.astype(np.uint64)
        inv_mass = pat.states.tip_rows(mask) @ model.frequencies
        with np.errstate(divide="ignore"):
            expected_site = np.logaddexp(
                np.log(p) + np.log(inv_mass), np.log1p(-p) + lg
            )
        expected = float(np.dot(expected_site, pat.weights))
        assert lnl_inv == pytest.approx(expected, abs=1e-9)

    def test_pulley_principle(self, setup):
        sim, pat, model = setup
        inv = InvariantSitesEngine(
            pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=0.2
        )
        vals = [inv.log_likelihood(e) for e in inv.tree.edge_ids]
        assert max(vals) - min(vals) < 1e-9

    def test_derivatives_match_finite_difference(self, setup):
        sim, pat, model = setup
        inv = InvariantSitesEngine(
            pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=0.3
        )
        tree = inv.tree
        eid = tree.edge_ids[2]
        sb = inv.edge_sum_buffer(eid)
        t0 = tree.edge(eid).length
        _, d1, d2 = inv.branch_derivatives(sb, t0)
        h = 1e-6

        def lnl_at(t):
            tree.edge(eid).length = t
            return inv.log_likelihood(eid)

        fd1 = (lnl_at(t0 + h) - lnl_at(t0 - h)) / (2 * h)
        h2 = 1e-4
        fd2 = (lnl_at(t0 + h2) - 2 * lnl_at(t0) + lnl_at(t0 - h2)) / (h2 * h2)
        tree.edge(eid).length = t0
        assert d1 == pytest.approx(fd1, rel=1e-4, abs=1e-4)
        assert d2 == pytest.approx(fd2, rel=1e-3, abs=1e-2)


class TestBehaviour:
    def test_branch_optimization_runs(self, setup):
        sim, pat, model = setup
        inv = InvariantSitesEngine(
            pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=0.2
        )
        before = inv.log_likelihood()
        after = optimize_all_branches(inv, passes=2)
        assert after >= before

    def test_pinv_recovery_on_invariant_rich_data(self):
        """Data simulated with many constant sites prefers p_inv > 0."""
        from repro.phylo import Tree, simulate_alignment, Alignment

        model = gtr()
        tree = Tree.from_newick("((a:0.4,b:0.4):0.2,(c:0.4,d:0.4):0.2);")
        rng = np.random.default_rng(5)
        var = simulate_alignment(tree, model, 600, rng).alignment
        # splice in 400 genuinely invariant columns
        states = "ACGT"
        const_cols = rng.choice(4, size=400)
        seqs = {}
        for i, taxon in enumerate(var.taxa):
            extra = "".join(states[c] for c in const_cols)
            seqs[taxon] = var.sequence(taxon) + extra
        pat = Alignment.from_sequences(seqs).compress()
        inv = InvariantSitesEngine(
            pat, tree.copy(), model, GammaRates(10.0, 4), p_inv=0.01
        )
        lnl = optimize_pinv(inv)
        assert inv.p_inv > 0.15
        # and the optimised model beats p_inv = 0
        inv.set_p_inv(0.0)
        assert lnl > inv.log_likelihood()

    def test_pinv_validation(self, setup):
        sim, pat, model = setup
        with pytest.raises(ValueError, match="p_inv"):
            InvariantSitesEngine(
                pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=1.0
            )

    def test_variable_rates_rescaled(self, setup):
        sim, pat, model = setup
        inv = InvariantSitesEngine(
            pat, sim.tree.copy(), model, GammaRates(0.7, 4), p_inv=0.5
        )
        plain = LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(0.7, 4))
        np.testing.assert_allclose(inv.rate_values, plain.rate_values / 0.5)
