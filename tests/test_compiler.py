"""Tests for the auto-vectorizer and intrinsics builder (Figure 2)."""

import numpy as np
import pytest

from repro.harness.figure2 import figure2_programs
from repro.mic import MIC512, AVX256, Op
from repro.mic.compiler import ArrayRef, Intrinsics, Loop, auto_vectorize, can_vectorize
from repro.mic.device import xeon_phi_device


@pytest.fixture()
def vm():
    return xeon_phi_device().make_vm()


def arrays_for(vm, *names, n=16):
    return {name: vm.alloc(n) for name in names}


class TestVectorizationConditions:
    def test_vectorizes_with_pragmas(self):
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b")).with_pragmas(
            "ivdep", "vector aligned"
        )
        assert can_vectorize(loop, MIC512).vectorized

    def test_refuses_without_ivdep(self):
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b")).with_pragmas(
            "vector aligned"
        )
        report = can_vectorize(loop, MIC512)
        assert not report.vectorized
        assert "ivdep" in report.reason

    def test_refuses_without_alignment(self):
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b")).with_pragmas("ivdep")
        report = can_vectorize(loop, MIC512)
        assert not report.vectorized
        assert "aligned" in report.reason

    def test_refuses_non_innermost(self):
        loop = Loop(16, "s", ArrayRef("a") * ArrayRef("b"), innermost=False)
        assert "innermost" in can_vectorize(loop, MIC512).reason

    def test_refuses_bad_trip_count(self):
        loop = Loop(13, "s", ArrayRef("a") * ArrayRef("b")).with_pragmas(
            "ivdep", "vector aligned"
        )
        assert "trip count" in can_vectorize(loop, MIC512).reason

    def test_output_aliasing_reported(self):
        loop = Loop(16, "a", ArrayRef("a") * ArrayRef("b"))
        assert "dependency" in can_vectorize(loop, MIC512).reason


class TestCodegen:
    def test_vectorized_correctness(self, vm):
        arrays = arrays_for(vm, "a", "b", "sum")
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=16), rng.normal(size=16)
        vm.write_array(arrays["a"], a)
        vm.write_array(arrays["b"], b)
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b")).with_pragmas(
            "ivdep", "vector aligned"
        )
        prog, report = auto_vectorize(loop, arrays, MIC512)
        assert report.vectorized
        vm.run(prog)
        np.testing.assert_allclose(vm.read_array(arrays["sum"], 16), a * b)

    def test_scalar_fallback_correctness(self, vm):
        arrays = arrays_for(vm, "a", "b", "sum")
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=16), rng.normal(size=16)
        vm.write_array(arrays["a"], a)
        vm.write_array(arrays["b"], b)
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b"))  # no pragmas
        prog, report = auto_vectorize(loop, arrays, MIC512)
        assert not report.vectorized
        vm.run(prog)
        np.testing.assert_allclose(vm.read_array(arrays["sum"], 16), a * b)

    def test_scalar_fallback_is_slower(self, vm):
        arrays = arrays_for(vm, "a", "b", "sum", n=64)
        loop = Loop(64, "sum", ArrayRef("a") * ArrayRef("b"))
        scalar, _ = auto_vectorize(loop, arrays, MIC512)
        vec, _ = auto_vectorize(
            loop.with_pragmas("ivdep", "vector aligned"), arrays, MIC512
        )
        t_scalar = vm.run(scalar).issue_cycles
        t_vec = vm.run(vec).issue_cycles
        assert t_scalar > 2.5 * t_vec

    def test_nontemporal_pragma_uses_streaming_store(self, vm):
        arrays = arrays_for(vm, "a", "b", "sum")
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b")).with_pragmas(
            "ivdep", "vector aligned", "vector nontemporal"
        )
        prog, _ = auto_vectorize(loop, arrays, MIC512)
        ops = [i.op for i in prog.instructions]
        assert Op.VSTORE_NT in ops and Op.VSTORE not in ops

    def test_avx_width_respected(self, vm):
        arrays = arrays_for(vm, "a", "b", "sum")
        loop = Loop(16, "sum", ArrayRef("a") * ArrayRef("b")).with_pragmas(
            "ivdep", "vector aligned"
        )
        prog, _ = auto_vectorize(loop, arrays, AVX256)
        # 16 doubles at width 4 -> 4 chunks x (2 loads + mul + store)
        assert len(prog) == 16

    def test_fma_folding(self, vm):
        arrays = arrays_for(vm, "a", "b", "c", "out")
        expr = ArrayRef("a") * ArrayRef("b") + ArrayRef("c")
        loop = Loop(16, "out", expr).with_pragmas("ivdep", "vector aligned")
        prog, _ = auto_vectorize(loop, arrays, MIC512)
        assert any(i.op is Op.VFMA for i in prog.instructions)


class TestFigure2:
    def test_pragma_and_intrinsics_identical(self):
        pragma_prog, intr_prog, _, _ = figure2_programs()
        assert pragma_prog.disassembly() == intr_prog.disassembly()

    def test_figure2_numerics(self):
        pragma_prog, _, vm, arrays = figure2_programs()
        left = np.arange(1.0, 17.0)
        right = np.full(16, 3.0)
        vm.write_array(arrays["left"], left)
        vm.write_array(arrays["right"], right)
        vm.run(pragma_prog)
        np.testing.assert_array_equal(
            vm.read_array(arrays["sum"], 16), left * right
        )

    def test_intrinsics_builder_register_allocation(self):
        intr = Intrinsics(MIC512)
        r0 = intr.load_pd(0)
        r1 = intr.load_pd(64)
        assert (r0, r1) == ("v0", "v1")
        intr.reset_registers()
        assert intr.load_pd(128) == "v0"
