"""Tests for the memory-saving (CLA recomputation) engine."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.core.memsave import MemorySavingEngine
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.search import optimize_all_branches, spr_round


@pytest.fixture(scope="module")
def problem():
    sim = simulate_dataset(n_taxa=20, n_sites=150, seed=33)
    pat = sim.alignment.compress()
    return sim, pat, gtr(), GammaRates(0.8, 4)


class TestExactness:
    def test_matches_full_engine(self, problem):
        sim, pat, model, gamma = problem
        full = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=4
        )
        assert save.log_likelihood() == pytest.approx(
            full.log_likelihood(), abs=1e-10
        )

    def test_every_root_edge_exact(self, problem):
        sim, pat, model, gamma = problem
        full = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=4
        )
        reference = full.log_likelihood()
        for e in save.tree.edge_ids:
            assert save.log_likelihood(e) == pytest.approx(reference, abs=1e-9)

    def test_minimum_budget_on_larger_tree(self):
        sim = simulate_dataset(n_taxa=40, n_sites=80, seed=1)
        pat = sim.alignment.compress()
        full = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(1.0, 4))
        save = MemorySavingEngine(
            pat, sim.tree.copy(), gtr(), GammaRates(1.0, 4), max_resident=3
        )
        assert save.log_likelihood() == pytest.approx(
            full.log_likelihood(), abs=1e-9
        )

    def test_branch_optimization_identical(self, problem):
        sim, pat, model, gamma = problem
        full = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=5
        )
        lnl_full = optimize_all_branches(full, passes=1)
        lnl_save = optimize_all_branches(save, passes=1)
        assert lnl_save == pytest.approx(lnl_full, abs=1e-8)

    def test_spr_round_runs_under_pressure(self, problem):
        sim, pat, model, gamma = problem
        from repro.phylo import random_topology

        bad = random_topology(list(pat.taxa), np.random.default_rng(2))
        save = MemorySavingEngine(pat, bad, model, gamma, max_resident=5)
        optimize_all_branches(save, passes=1)
        stats = spr_round(save, radius=3)
        assert stats.lnl_after >= stats.lnl_before


class TestBudget:
    def test_residency_capped(self, problem):
        sim, pat, model, gamma = problem
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=4
        )
        for e in save.tree.edge_ids:
            save.log_likelihood(e)
            assert save.resident_clas() <= 4

    def test_recomputation_counted(self, problem):
        sim, pat, model, gamma = problem
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=4
        )
        for e in save.tree.edge_ids:
            save.log_likelihood(e)
        assert save.recomputed_clas > 0

    def test_more_newviews_than_full_engine(self, problem):
        sim, pat, model, gamma = problem
        full = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=4
        )
        for e in sorted(sim.tree.edge_ids):
            full.log_likelihood(e)
            save.log_likelihood(e)
        assert (
            save.counters.merged()["newview"] > full.counters.merged()["newview"]
        )

    def test_large_budget_avoids_recomputation(self, problem):
        sim, pat, model, gamma = problem
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=100
        )
        for e in save.tree.edge_ids:
            save.log_likelihood(e)
        assert save.recomputed_clas == 0

    def test_memory_fraction(self, problem):
        sim, pat, model, gamma = problem
        save = MemorySavingEngine(
            pat, sim.tree.copy(), model, gamma, max_resident=6
        )
        assert save.memory_fraction() == pytest.approx(6 / 18)

    def test_minimum_validated(self, problem):
        sim, pat, model, gamma = problem
        with pytest.raises(ValueError, match="at least 3"):
            MemorySavingEngine(
                pat, sim.tree.copy(), model, gamma, max_resident=2
            )
