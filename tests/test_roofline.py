"""Tests for the roofline analysis."""

import pytest

from repro.perf import NVIDIA_K20, XEON_E5_2680_2S, XEON_PHI_5110P_1S
from repro.perf.costmodel import measure_kernel_cycles
from repro.perf.roofline import render_roofline, roofline_analysis


class TestRoofline:
    def test_all_kernels_classified(self):
        points = roofline_analysis(XEON_PHI_5110P_1S)
        assert {p.kernel for p in points} == {
            "newview", "evaluate", "derivative_sum", "derivative_core",
        }

    def test_derivative_sum_deepest_in_memory_bound_region(self):
        """The paper's Figure 3 narrative: the streaming kernel has by
        far the lowest arithmetic intensity."""
        points = {p.kernel: p for p in roofline_analysis(XEON_PHI_5110P_1S)}
        ds = points["derivative_sum"]
        assert ds.memory_bound
        for kernel, p in points.items():
            if kernel != "derivative_sum":
                assert ds.arithmetic_intensity < p.arithmetic_intensity

    def test_all_plf_kernels_memory_bound(self):
        """PLF kernels sit left of the ridge on both platforms — the
        premise of the whole bandwidth-driven speedup story."""
        for platform in (XEON_PHI_5110P_1S, XEON_E5_2680_2S):
            for p in roofline_analysis(platform):
                assert p.memory_bound, (platform.name, p.kernel)

    def test_attainable_fraction_below_one(self):
        for p in roofline_analysis(XEON_PHI_5110P_1S):
            assert 0.0 < p.attainable_fraction < 1.0

    def test_mic_ridge_higher_than_cpu(self):
        """More peak flops per byte of bandwidth on the MIC."""
        mic = roofline_analysis(XEON_PHI_5110P_1S)[0].ridge_intensity
        cpu = roofline_analysis(XEON_E5_2680_2S)[0].ridge_intensity
        assert mic > cpu

    def test_reference_platform_rejected(self):
        with pytest.raises(ValueError, match="ISA"):
            roofline_analysis(NVIDIA_K20)

    def test_render(self):
        text = render_roofline()
        assert "Roofline" in text
        assert "memory" in text

    def test_flops_measured(self):
        meas = measure_kernel_cycles("mic512")
        # newview: two 4x4 mat-vecs + product + back-projection per site,
        # 4 rates: on the order of a few hundred flops/site
        assert 200 < meas["newview"].flops_per_site < 600
        # derivative_sum: 16 multiplies per site
        assert meas["derivative_sum"].flops_per_site == pytest.approx(16, abs=1)
