"""Tests for split frequencies and majority-rule consensus trees."""

import numpy as np
import pytest

from repro.phylo import Tree, random_topology
from repro.phylo.consensus import majority_rule_consensus, split_frequencies


def trees_abcdef():
    t1 = Tree.from_newick("((a,b),(c,d),(e,f));")
    t2 = Tree.from_newick("((a,b),(c,e),(d,f));")
    t3 = Tree.from_newick("((a,b),(c,d),(e,f));")
    return [t1, t2, t3]


class TestSplitFrequencies:
    def test_unanimous_split(self):
        freqs = split_frequencies(trees_abcdef())
        ab = frozenset({"a", "b"})
        assert freqs[ab] == pytest.approx(1.0)

    def test_partial_split(self):
        freqs = split_frequencies(trees_abcdef())
        cd_split = frozenset({"a", "b", "e", "f"})  # canonical side of cd
        assert freqs[cd_split] == pytest.approx(2 / 3)

    def test_requires_same_taxa(self):
        t1 = Tree.from_newick("((a,b),(c,d));")
        t2 = Tree.from_newick("((a,b),(c,e));")
        with pytest.raises(ValueError, match="taxon sets"):
            split_frequencies([t1, t2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no input"):
            split_frequencies([])


class TestMajorityRuleConsensus:
    def test_recovers_majority_splits(self):
        cons, support = majority_rule_consensus(trees_abcdef())
        splits = cons.splits()
        assert frozenset({"a", "b"}) in splits
        # cd and ef splits appear in 2/3 of trees -> included
        assert len(splits) == 3
        assert support[frozenset({"a", "b"})] == pytest.approx(1.0)

    def test_identical_trees_give_input_topology(self):
        ref = Tree.from_newick("((a,b),((c,d),e),f);")
        cons, support = majority_rule_consensus([ref.copy() for _ in range(4)])
        assert cons.robinson_foulds(ref) == 0
        assert all(v == 1.0 for v in support.values())

    def test_conflicting_trees_give_star(self):
        """Three incompatible resolutions of a quartet -> unresolved."""
        t1 = Tree.from_newick("((a,b),(c,d));")
        t2 = Tree.from_newick("((a,c),(b,d));")
        t3 = Tree.from_newick("((a,d),(b,c));")
        cons, support = majority_rule_consensus([t1, t2, t3])
        assert len(cons.splits()) == 0  # star
        assert support == {}

    def test_all_leaves_present(self):
        cons, _ = majority_rule_consensus(trees_abcdef())
        assert sorted(cons.leaf_names()) == ["a", "b", "c", "d", "e", "f"]

    def test_higher_threshold_less_resolved(self):
        trees = trees_abcdef()
        loose, _ = majority_rule_consensus(trees, threshold=0.5)
        strict, _ = majority_rule_consensus(trees, threshold=0.9)
        assert len(strict.splits()) <= len(loose.splits())

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            majority_rule_consensus(trees_abcdef(), threshold=1.0)

    def test_random_trees_consensus_is_valid_tree(self):
        names = [f"t{i}" for i in range(8)]
        trees = [
            random_topology(names, np.random.default_rng(s)) for s in range(7)
        ]
        cons, support = majority_rule_consensus(trees)
        assert sorted(cons.leaf_names()) == sorted(names)
        # all consensus splits must exist in >50% of inputs
        freqs = split_frequencies(trees)
        for s in cons.splits():
            assert freqs.get(s, 0.0) > 0.5
