"""Unit tests for rate-heterogeneity models."""

import numpy as np
import pytest
from scipy.stats import gamma as gamma_dist

from repro.phylo.rates import CatRates, GammaRates, discrete_gamma_rates


class TestDiscreteGamma:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 1.0, 2.0, 10.0])
    def test_mean_is_one(self, alpha):
        rates = discrete_gamma_rates(alpha, 4)
        assert rates.mean() == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    def test_category_counts(self, k):
        rates = discrete_gamma_rates(0.7, k)
        assert rates.shape == (k,)
        assert rates.mean() == pytest.approx(1.0)

    def test_rates_increasing(self):
        rates = discrete_gamma_rates(0.5, 4)
        assert np.all(np.diff(rates) > 0)

    def test_rates_positive(self):
        rates = discrete_gamma_rates(0.05, 4)
        assert np.all(rates > 0)

    def test_large_alpha_approaches_uniform(self):
        rates = discrete_gamma_rates(500.0, 4)
        np.testing.assert_allclose(rates, 1.0, atol=0.1)

    def test_small_alpha_is_skewed(self):
        rates = discrete_gamma_rates(0.1, 4)
        assert rates[0] < 1e-3
        assert rates[-1] > 2.0

    def test_matches_monte_carlo_category_means(self):
        """Category means equal conditional means of the Gamma slices."""
        alpha, k = 0.8, 4
        rates = discrete_gamma_rates(alpha, k)
        rng = np.random.default_rng(0)
        draws = np.sort(gamma_dist.rvs(alpha, scale=1 / alpha, size=400_000, random_state=rng))
        mc = draws.reshape(k, -1).mean(axis=1)
        np.testing.assert_allclose(rates, mc, rtol=0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(-1.0, 4)
        with pytest.raises(ValueError):
            discrete_gamma_rates(1.0, 0)

    def test_single_category_is_unit(self):
        np.testing.assert_array_equal(discrete_gamma_rates(0.5, 1), [1.0])


class TestGammaRates:
    def test_weights_uniform(self):
        g = GammaRates(alpha=1.0, n_categories=4)
        np.testing.assert_allclose(g.weights, 0.25)

    def test_with_alpha(self):
        g = GammaRates(alpha=1.0).with_alpha(2.0)
        assert g.alpha == 2.0
        assert g.n_categories == 4


class TestCatRates:
    def test_from_gamma_normalised(self):
        rng = np.random.default_rng(1)
        cat = CatRates.from_gamma(0.7, n_patterns=100, n_categories=4, rng=rng)
        assert cat.site_rates().shape == (100,)
        assert cat.site_rates().mean() == pytest.approx(1.0, abs=1e-9)

    def test_weighted_normalisation(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(1, 5, size=50).astype(float)
        cat = CatRates.from_gamma(0.7, 50, 4, rng, weights=weights)
        mean = np.average(cat.site_rates(), weights=weights)
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_category_index_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            CatRates(np.array([1.0]), np.array([0, 1]))

    def test_positive_rates_required(self):
        with pytest.raises(ValueError, match="positive"):
            CatRates(np.array([0.0, 1.0]), np.array([0, 1]))
