"""Unit tests for character-state encodings."""

import numpy as np
import pytest

from repro.phylo.states import DNA, PROTEIN, dna_char, dna_code


class TestDnaCodes:
    def test_canonical_bases(self):
        assert dna_code("A") == 1
        assert dna_code("C") == 2
        assert dna_code("G") == 4
        assert dna_code("T") == 8

    def test_case_insensitive(self):
        assert dna_code("a") == dna_code("A")

    def test_uracil_maps_to_t(self):
        assert dna_code("U") == dna_code("T")

    def test_ambiguity_codes_are_unions(self):
        assert dna_code("R") == dna_code("A") | dna_code("G")
        assert dna_code("Y") == dna_code("C") | dna_code("T")
        assert dna_code("N") == 0b1111
        assert dna_code("-") == 0b1111

    def test_every_code_is_nonzero_4bit(self):
        for ch, code in DNA.char_to_code.items():
            assert 1 <= code <= 15, ch

    def test_roundtrip_unambiguous(self):
        for ch in "ACGT":
            assert dna_char(dna_code(ch)) == ch


class TestEncodeDecode:
    def test_encode_simple(self):
        codes = DNA.encode("ACGT")
        assert list(codes) == [1, 2, 4, 8]

    def test_encode_rejects_invalid(self):
        with pytest.raises(ValueError, match="position 2"):
            DNA.encode("AC!T")

    def test_decode_roundtrip(self):
        seq = "ACGTRYN-"
        assert DNA.decode(DNA.encode(seq)) in ("ACGTRYN-", "ACGTRY--")
        # exact roundtrip for unambiguous + gap
        assert DNA.decode(DNA.encode("ACGT-")) == "ACGT-"


class TestTipTable:
    def test_dna_tip_table_shape(self):
        table = DNA.tip_table()
        assert table.shape == (16, 4)

    def test_tip_table_rows_match_bitmask(self):
        table = DNA.tip_table()
        for code in range(16):
            for s in range(4):
                assert table[code, s] == (1.0 if code & (1 << s) else 0.0)

    def test_gap_row_is_all_ones(self):
        table = DNA.tip_table()
        assert np.all(table[15] == 1.0)

    def test_tip_rows_sparse_matches_dense(self):
        codes = np.array([1, 2, 4, 8, 15, 5])
        dense = DNA.tip_table()[codes]
        sparse = DNA.tip_rows(codes)
        np.testing.assert_array_equal(dense, sparse)


class TestProtein:
    def test_twenty_states(self):
        assert PROTEIN.n_states == 20

    def test_all_codes_nonzero(self):
        for ch, code in PROTEIN.char_to_code.items():
            assert code > 0, ch

    def test_x_is_fully_ambiguous(self):
        assert PROTEIN.char_to_code["X"] == (1 << 20) - 1

    def test_b_is_n_or_d(self):
        b = PROTEIN.char_to_code["B"]
        n = PROTEIN.char_to_code["N"]
        d = PROTEIN.char_to_code["D"]
        assert b == n | d

    def test_dense_table_refused(self):
        with pytest.raises(ValueError, match="infeasible"):
            PROTEIN.tip_table()

    def test_tip_rows_work_for_protein(self):
        codes = PROTEIN.encode("ARND")
        rows = PROTEIN.tip_rows(codes)
        assert rows.shape == (4, 20)
        np.testing.assert_array_equal(rows.sum(axis=1), np.ones(4))
