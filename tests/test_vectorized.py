"""VM-executed vectorized kernels vs the NumPy reference kernels."""

import numpy as np
import pytest

from repro.core import kernels as ref
from repro.core.layouts import InterleavedLayout
from repro.core.vectorized import (
    BLOCK_DOUBLES,
    emit_derivative_core,
    emit_derivative_sum,
    emit_evaluate,
    emit_newview_inner_inner,
    prepare_derivative_consts,
    prepare_evaluate_consts,
    prepare_newview_consts,
    setup_buffers,
)
from repro.mic.device import xeon_e5_device, xeon_phi_device
from repro.phylo import GammaRates, gtr

N_SITES = 48


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(77)
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    gamma = GammaRates(0.8, 4)
    z_left = rng.uniform(0.1, 1.0, size=(N_SITES, 4, 4))
    z_right = rng.uniform(0.1, 1.0, size=(N_SITES, 4, 4))
    weights = rng.integers(1, 4, size=N_SITES).astype(float)
    return model.eigen(), gamma, z_left, z_right, weights


DEVICES = [("mic", xeon_phi_device), ("cpu-avx", xeon_e5_device)]


@pytest.mark.parametrize("name,device_factory", DEVICES)
class TestKernelNumerics:
    def test_derivative_sum(self, name, device_factory, problem):
        eigen, gamma, zl, zr, w = problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, zl, zr)
        vm.run(emit_derivative_sum(vm.isa, bufs))
        got = vm.read_array(bufs.out, N_SITES * BLOCK_DOUBLES).reshape(N_SITES, 4, 4)
        np.testing.assert_allclose(got, ref.derivative_sum(zl, zr), rtol=1e-14)

    def test_evaluate(self, name, device_factory, problem):
        eigen, gamma, zl, zr, w = problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, zl, zr, weights=w)
        t = 0.37
        prepare_evaluate_consts(vm, bufs, eigen, gamma.rates, gamma.weights, t)
        vm.run(emit_evaluate(vm.isa, bufs))
        got = vm.read_array(bufs.scalar_out, 1)[0]
        exps = ref.branch_exponentials(eigen, gamma.rates, t)
        expected = ref.evaluate_edge(
            zl, zr, exps, gamma.weights, w, np.zeros(N_SITES, dtype=np.int64)
        )
        assert got == pytest.approx(expected, abs=1e-9)

    def test_newview_inner_inner(self, name, device_factory, problem):
        eigen, gamma, zl, zr, w = problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, zl, zr)
        prepare_newview_consts(vm, bufs, eigen, gamma.rates, 0.21, 0.43)
        vm.run(emit_newview_inner_inner(vm.isa, bufs))
        got = vm.read_array(bufs.out, N_SITES * BLOCK_DOUBLES).reshape(N_SITES, 4, 4)
        a1 = ref.branch_matrices(eigen, gamma.rates, 0.21)
        a2 = ref.branch_matrices(eigen, gamma.rates, 0.43)
        zeros = np.zeros(N_SITES, dtype=np.int64)
        expected, _ = ref.newview_inner_inner(
            eigen.u_inv, a1, a2, zl, zr, zeros, zeros
        )
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_derivative_core_blocked(self, name, device_factory, problem):
        eigen, gamma, zl, zr, w = problem
        sumbuf = ref.derivative_sum(zl, zr)
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, sumbuf, zr, weights=w)
        t = 0.29
        prepare_derivative_consts(vm, bufs, eigen, gamma.rates, gamma.weights, t)
        vm.run(emit_derivative_core(vm.isa, bufs, site_block=vm.isa.width))
        got = vm.read_array(bufs.scalar_out, 2)
        _, d1, d2 = ref.derivative_core(
            sumbuf, eigen.eigenvalues, gamma.rates, gamma.weights, t, w
        )
        assert got[0] == pytest.approx(d1, abs=1e-9)
        assert got[1] == pytest.approx(d2, abs=1e-9)

    def test_derivative_core_unblocked_matches_blocked(
        self, name, device_factory, problem
    ):
        eigen, gamma, zl, zr, w = problem
        sumbuf = ref.derivative_sum(zl, zr)
        results = []
        for block in (1, None):
            vm = device_factory().make_vm()
            bufs = setup_buffers(vm, sumbuf, zr, weights=w)
            prepare_derivative_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.29)
            sb = block if block is not None else vm.isa.width
            vm.run(emit_derivative_core(vm.isa, bufs, site_block=sb))
            results.append(vm.read_array(bufs.scalar_out, 2))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12)


class TestKernelPerformanceShape:
    def test_derivative_sum_bandwidth_bound_on_mic(self, problem):
        _, _, zl, zr, _ = problem
        vm = xeon_phi_device().make_vm()
        bufs = setup_buffers(vm, zl, zr)
        stats = vm.run(emit_derivative_sum(vm.isa, bufs))
        assert stats.bandwidth_cycles > stats.issue_cycles

    def test_streaming_store_saves_traffic(self, problem):
        _, _, zl, zr, _ = problem
        vm = xeon_phi_device().make_vm()
        bufs = setup_buffers(vm, zl, zr)
        nt = vm.run(emit_derivative_sum(vm.isa, bufs, nontemporal=True))
        plain = vm.run(emit_derivative_sum(vm.isa, bufs, nontemporal=False))
        assert nt.memory.dram_bytes < plain.memory.dram_bytes

    def test_prefetch_distance_zero_is_slower(self, problem):
        _, _, zl, zr, _ = problem
        vm = xeon_phi_device().make_vm()
        vm.hierarchy.hw_prefetch_enabled = False
        bufs = setup_buffers(vm, zl, zr)
        no_pf = vm.run(emit_derivative_sum(vm.isa, bufs, prefetch_distance=0))
        with_pf = vm.run(emit_derivative_sum(vm.isa, bufs, prefetch_distance=8))
        assert with_pf.cycles < no_pf.cycles

    def test_width_validation(self, problem):
        from repro.mic import SSE128

        _, _, zl, zr, _ = problem
        vm = xeon_phi_device().make_vm()
        bufs = setup_buffers(vm, zl, zr)
        # shuffle-based kernels need width 4 or 8...
        with pytest.raises(ValueError, match="widths 4"):
            emit_newview_inner_inner(SSE128, bufs)
        # ...but the streaming kernel supports SSE's width-2 path
        prog = emit_derivative_sum(SSE128, bufs)
        assert len(prog) > 0

    def test_sse_derivative_sum_numerics(self, problem):
        """RAxML's oldest vector path (SSE3) still computes correctly."""
        from repro.mic import SSE128
        from repro.mic.memory import SNB_DDR3
        from repro.mic.vm import VectorMachine

        _, _, zl, zr, _ = problem
        vm = VectorMachine(SSE128, SNB_DDR3)
        bufs = setup_buffers(vm, zl, zr)
        vm.run(emit_derivative_sum(vm.isa, bufs))
        got = vm.read_array(bufs.out, N_SITES * BLOCK_DOUBLES).reshape(
            N_SITES, 4, 4
        )
        np.testing.assert_allclose(got, ref.derivative_sum(zl, zr), rtol=1e-14)


class TestLayouts:
    def test_gamma_dna_block_needs_no_padding(self):
        layout = InterleavedLayout(10, 4, 4, alignment=64)
        assert layout.padding_doubles == 0
        assert layout.bytes_per_site == 128

    def test_cat_layout_needs_padding_on_mic(self):
        # CAT: 1 rate -> 4 doubles = 32B per site; MIC needs 64B blocks
        layout = InterleavedLayout(10, 1, 4, alignment=64)
        assert layout.padding_doubles == 4
        assert layout.bytes_per_site == 64

    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        layout = InterleavedLayout(7, 1, 4, alignment=64)
        z = rng.normal(size=(7, 1, 4))
        flat = layout.to_flat(z)
        assert flat.shape == (layout.total_doubles,)
        np.testing.assert_array_equal(layout.from_flat(flat), z)

    def test_site_offsets_aligned(self):
        layout = InterleavedLayout(5, 1, 4, alignment=64)
        for site in range(5):
            assert layout.site_offset(site) % 64 == 0

    def test_shape_validation(self):
        layout = InterleavedLayout(5, 4, 4)
        with pytest.raises(ValueError, match="expected"):
            layout.to_flat(np.zeros((5, 4, 3)))
        with pytest.raises(IndexError):
            layout.site_offset(5)
