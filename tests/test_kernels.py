"""Kernel correctness: reference kernels vs. brute-force likelihood."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core import LikelihoodEngine
from repro.core.kernels import (
    branch_exponentials,
    branch_matrices,
    derivative_core,
    derivative_sum,
    evaluate_edge,
    tip_eigen_table,
)
from repro.core.scaling import LOG_SCALE_STEP, SCALE_THRESHOLD, rescale_clv
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.phylo.states import DNA


def brute_force_lnl(tree, patterns, model, gamma):
    """Independent Felsenstein pruning with scipy expm matrices."""
    q = model.rate_matrix()
    pi = model.frequencies
    tip_table = patterns.states.tip_table()
    rates = gamma.rates

    def cond(node, up_edge, rate):
        if tree.is_leaf(node):
            return tip_table[patterns.row(tree.name(node))]
        out = np.ones((patterns.n_patterns, model.n_states))
        for child, eid in tree.children(node, up_edge):
            p = expm(q * rate * tree.edge(eid).length)
            out *= cond(child, eid, rate) @ p.T
        return out

    e0 = tree.edge_ids[0]
    edge = tree.edge(e0)
    total = np.zeros(patterns.n_patterns)
    for r, rate in enumerate(rates):
        p = expm(q * rate * edge.length)
        wl = cond(edge.u, e0, rate)
        wr = cond(edge.v, e0, rate)
        total += gamma.weights[r] * np.einsum("pi,i,ij,pj->p", wl, pi, p, wr)
    return float(np.dot(np.log(total), patterns.weights))


@pytest.fixture(scope="module")
def setup():
    sim = simulate_dataset(n_taxa=7, n_sites=80, seed=21)
    patterns = sim.alignment.compress()
    model = gtr(
        np.array([1.5, 2.8, 0.7, 1.2, 4.1, 1.0]),
        np.array([0.28, 0.22, 0.24, 0.26]),
    )
    gamma = GammaRates(0.6, 4)
    engine = LikelihoodEngine(patterns, sim.tree.copy(), model, gamma)
    return sim, patterns, model, gamma, engine


class TestAgainstBruteForce:
    def test_log_likelihood_matches(self, setup):
        sim, patterns, model, gamma, engine = setup
        expected = brute_force_lnl(engine.tree, patterns, model, gamma)
        assert engine.log_likelihood() == pytest.approx(expected, abs=1e-9)

    def test_no_gamma_case(self):
        sim = simulate_dataset(n_taxa=5, n_sites=50, seed=5, alpha=None)
        patterns = sim.alignment.compress()
        model = gtr()
        gamma = GammaRates(1.0, 1)
        engine = LikelihoodEngine(patterns, sim.tree.copy(), model, gamma)
        expected = brute_force_lnl(engine.tree, patterns, model, gamma)
        assert engine.log_likelihood() == pytest.approx(expected, abs=1e-9)


class TestBranchStructures:
    def test_branch_matrix_times_uinv_is_p(self, setup):
        _, _, model, gamma, _ = setup
        eig = model.eigen()
        a = branch_matrices(eig, gamma.rates, 0.37)
        q = model.rate_matrix()
        for c, rate in enumerate(gamma.rates):
            np.testing.assert_allclose(
                a[c] @ eig.u_inv, expm(q * rate * 0.37), atol=1e-10
            )

    def test_exponentials_shape_and_t0(self, setup):
        _, _, model, gamma, _ = setup
        eig = model.eigen()
        e = branch_exponentials(eig, gamma.rates, 0.0)
        np.testing.assert_allclose(e, 1.0)

    def test_tip_eigen_roundtrip(self, setup):
        """U @ tipVector[code] must reproduce the indicator vector."""
        _, _, model, _, _ = setup
        eig = model.eigen()
        table = DNA.tip_table()
        tv = tip_eigen_table(eig, table)
        np.testing.assert_allclose(tv @ eig.u.T, table, atol=1e-12)


class TestDerivatives:
    def test_derivative_matches_finite_difference(self, setup):
        _, patterns, model, gamma, engine = setup
        eid = engine.tree.edge_ids[3]
        sumbuf = engine.edge_sum_buffer(eid)
        t0 = 0.23
        _, d1, d2 = engine.branch_derivatives(sumbuf, t0)
        h = 1e-6

        def lnl_at(t):
            engine.tree.edge(eid).length = t
            return engine.log_likelihood(eid)

        orig = engine.tree.edge(eid).length
        num_d1 = (lnl_at(t0 + h) - lnl_at(t0 - h)) / (2 * h)
        # Second differences cancel catastrophically at h=1e-6 on lnL
        # values of magnitude ~1e3; a wider step keeps FD noise below the
        # O(h^2) truncation error.
        h2 = 1e-4
        num_d2 = (lnl_at(t0 + h2) - 2 * lnl_at(t0) + lnl_at(t0 - h2)) / (h2 * h2)
        engine.tree.edge(eid).length = orig
        assert d1 == pytest.approx(num_d1, rel=1e-4, abs=1e-4)
        assert d2 == pytest.approx(num_d2, rel=1e-4, abs=1e-3)

    def test_derivative_core_lnl_consistent_with_evaluate(self, setup):
        """derivativeCore's lnL equals evaluate's (up to scaling consts)."""
        _, patterns, model, gamma, engine = setup
        eid = engine.tree.edge_ids[0]
        t = engine.tree.edge(eid).length
        sumbuf = engine.edge_sum_buffer(eid)
        lnl_core, _, _ = engine.branch_derivatives(sumbuf, t)
        # evaluate path
        engine.ensure_valid(eid)
        z_l, z_r, scales = engine._root_sides(eid)
        eig = engine.eigen
        exps = branch_exponentials(eig, gamma.rates, t)
        lnl_eval = evaluate_edge(
            z_l, z_r, exps, engine.rate_weights, patterns.weights, scales
        )
        correction = float(np.dot(scales, patterns.weights)) * LOG_SCALE_STEP
        assert lnl_core - correction == pytest.approx(lnl_eval, abs=1e-8)

    def test_derivative_sum_is_elementwise_product(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(10, 4, 4))
        b = rng.normal(size=(10, 4, 4))
        np.testing.assert_array_equal(derivative_sum(a, b), a * b)

    def test_derivative_core_rejects_bad_sumbuffer(self, setup):
        _, patterns, model, gamma, _ = setup
        eig = model.eigen()
        bad = -np.ones((3, 4, 4))
        with pytest.raises(FloatingPointError):
            derivative_core(
                bad, eig.eigenvalues, gamma.rates, gamma.weights, 0.1,
                np.ones(3),
            )


class TestScaling:
    def test_rescale_triggers_below_threshold(self):
        z = np.full((2, 4, 4), SCALE_THRESHOLD / 4)
        z[1] = 0.5  # second pattern healthy
        counts = np.zeros(2, dtype=np.int64)
        rescale_clv(z, counts)
        assert counts[0] == 1 and counts[1] == 0
        assert z[0, 0, 0] == pytest.approx(SCALE_THRESHOLD / 4 * 2.0**256)

    def test_scaled_likelihood_equals_unscaled(self):
        """A deep caterpillar forces scaling; lnL must match brute force.

        Long branches make every CLA entry shrink by a constant factor per
        level; ~200 levels cross the 2**-256 threshold.  Near-uniform
        Gamma rates (huge alpha) keep *all* rate categories decaying, so
        whole site blocks underflow — the trigger condition.
        """
        from repro.phylo import Alignment, Tree

        n = 220
        core = "(t0:2.0,t1:2.0)"
        for i in range(2, n):
            core = f"({core}:2.0,t{i}:2.0)"
        tree = Tree.from_newick(core + ";")
        seqs = {f"t{i}": "ACGTAC" for i in range(n)}
        patterns = Alignment.from_sequences(seqs).compress()
        model = gtr()
        gamma = GammaRates(200.0, 4)
        engine = LikelihoodEngine(patterns, tree, model, gamma)
        lnl = engine.log_likelihood()
        total_scales = sum(int(sc.sum()) for _, sc in engine._clas.values())
        assert total_scales > 0, "test should exercise the scaling path"
        expected = brute_force_lnl(tree, patterns, model, gamma)
        assert lnl == pytest.approx(expected, rel=1e-10)
