"""The Sec. V-B2 alignment demonstration: CAT layouts on the VM.

CAT's 32-byte site blocks straddle the MIC's 64-byte vector alignment
unless padded; the VM enforces the alignment rule, so the unpadded
program must be rejected on the MIC while (a) the padded MIC program
and (b) the unpadded AVX program both run and compute correctly.
"""

import numpy as np
import pytest

from repro.core.layouts import InterleavedLayout
from repro.core.vectorized import emit_cat_derivative_sum
from repro.mic.device import xeon_e5_device, xeon_phi_device

N_SITES = 17  # odd, so unpadded misalignment actually occurs


@pytest.fixture()
def cat_data():
    rng = np.random.default_rng(13)
    z_left = rng.uniform(0.1, 1.0, size=(N_SITES, 1, 4))
    z_right = rng.uniform(0.1, 1.0, size=(N_SITES, 1, 4))
    return z_left, z_right


def _setup(vm, layout, z_left, z_right):
    left = vm.alloc(layout.total_doubles)
    right = vm.alloc(layout.total_doubles)
    out = vm.alloc(layout.total_doubles)
    vm.write_array(left, layout.to_flat(z_left))
    vm.write_array(right, layout.to_flat(z_right))
    return left, right, out


class TestCatAlignment:
    def test_padded_layout_runs_on_mic(self, cat_data):
        z_left, z_right = cat_data
        vm = xeon_phi_device().make_vm()
        layout = InterleavedLayout(N_SITES, 1, 4, alignment=64)
        assert layout.padding_doubles == 4  # 32B payload padded to 64B
        left, right, out = _setup(vm, layout, z_left, z_right)
        prog = emit_cat_derivative_sum(vm.isa, layout, left, right, out)
        vm.run(prog)
        got = layout.from_flat(vm.read_array(out, layout.total_doubles))
        np.testing.assert_allclose(got, z_left * z_right, rtol=1e-14)

    def test_unpadded_layout_rejected_on_mic(self, cat_data):
        """The paper's warning, as an executable failure."""
        z_left, z_right = cat_data
        vm = xeon_phi_device().make_vm()
        # force an unpadded layout: blocks of 4 doubles back to back
        layout = InterleavedLayout(N_SITES, 1, 4, alignment=32)
        assert layout.padding_doubles == 0
        left, right, out = _setup(vm, layout, z_left, z_right)
        prog = emit_cat_derivative_sum(vm.isa, layout, left, right, out)
        with pytest.raises(ValueError, match="misaligned"):
            vm.run(prog)

    def test_unpadded_layout_fine_on_avx(self, cat_data):
        """AVX's 32-byte alignment matches the CAT block — no padding
        needed on the CPU, which is why the hazard is MIC-specific."""
        z_left, z_right = cat_data
        vm = xeon_e5_device().make_vm()
        layout = InterleavedLayout(N_SITES, 1, 4, alignment=32)
        left, right, out = _setup(vm, layout, z_left, z_right)
        prog = emit_cat_derivative_sum(vm.isa, layout, left, right, out)
        vm.run(prog)
        got = layout.from_flat(vm.read_array(out, layout.total_doubles))
        np.testing.assert_allclose(got, z_left * z_right, rtol=1e-14)

    def test_padding_costs_bandwidth(self, cat_data):
        """The padding tradeoff: aligned but 2x the memory traffic."""
        z_left, z_right = cat_data
        vm = xeon_phi_device().make_vm()
        padded = InterleavedLayout(N_SITES, 1, 4, alignment=64)
        gamma_like = InterleavedLayout(N_SITES, 4, 4, alignment=64)
        # per-site bytes double under CAT padding vs its payload
        assert padded.bytes_per_site == 2 * padded.block_doubles * 8
        # while the Gamma-4 block needs no padding at all
        assert gamma_like.padding_doubles == 0
