"""Execution-plan IR: levelization, wave dispatch, and invalidation.

Covers the scheduler satellites:

* a hypothesis property test that levelized plans are *valid schedules*
  (every operand is produced in a strictly earlier wave) and that
  wave-by-wave batched execution reproduces the per-op path's CLAs to
  1e-10 for every registered backend;
* a regression test that after SPR/NNI moves the planned waves contain
  exactly the signature-stale nodes (and none of the untouched pruned
  subtree);
* unit coverage of the wave statistics, plan fusion, the parallel
  drivers' wave accounting, and the scheduling cost model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExecutionPlan,
    LikelihoodEngine,
    Wave,
    WaveStats,
    available_backends,
    fuse_plans,
    levelize,
)
from repro.core.partitioned import Partition, PartitionedEngine
from repro.parallel.distributed import DistributedEngine
from repro.parallel.forkjoin import ForkJoinEngine
from repro.phylo import Alignment, GammaRates, gtr, random_topology

TAXA = [f"t{i}" for i in range(8)]


def make_case(n_taxa=8, n_sites=60, seed=0):
    rng = np.random.default_rng(seed)
    names = [f"t{i}" for i in range(n_taxa)]
    data = rng.choice([1, 2, 4, 8], size=(n_taxa, n_sites)).astype(np.uint32)
    patterns = Alignment(names, data).compress()
    tree = random_topology(names, rng)
    return patterns, tree


def make_engine(seed=0, backend=None, **kw):
    patterns, tree = make_case(seed=seed, **kw)
    return LikelihoodEngine(patterns, tree, gtr(), GammaRates(0.7, 4),
                            backend=backend)


# ----------------------------------------------------------------------
# hypothesis: plans are valid schedules; batched == per-op CLAs
# ----------------------------------------------------------------------
@st.composite
def plan_cases(draw):
    n_taxa = draw(st.integers(4, 9))
    n_sites = draw(st.integers(4, 40))
    seed = draw(st.integers(0, 2**31))
    return n_taxa, n_sites, seed


class TestLevelizeProperties:
    @given(plan_cases())
    @settings(max_examples=25, deadline=None)
    def test_plan_is_valid_schedule(self, case):
        """Every operand of wave k is a tip or produced in a wave < k."""
        n_taxa, n_sites, seed = case
        engine = make_engine(seed=seed, n_taxa=n_taxa, n_sites=n_sites)
        plan = engine.plan_execution(engine.default_edge())
        tree = engine.tree
        produced_at: dict[int, int] = {}
        for wave in plan.waves:
            for op in wave.ops:
                assert op.node not in produced_at, "node scheduled twice"
                for child in (op.child1, op.child2):
                    if not tree.is_leaf(child):
                        assert child in produced_at, "operand never produced"
                        assert produced_at[child] < wave.index
                produced_at[op.node] = wave.index
        # a fresh engine must schedule every internal directed node
        internal = {
            node
            for node, _p, _e in tree.postorder(plan.root_edge)
            if not tree.is_leaf(node)
        }
        assert set(produced_at) == internal
        assert plan.depth == len(plan.waves)
        assert plan.max_width == max(w.width for w in plan.waves)

    @given(plan_cases())
    @settings(max_examples=10, deadline=None)
    def test_wave_execution_matches_per_op_path(self, case):
        """Batched wave dispatch == per-op dispatch, every backend, 1e-10."""
        n_taxa, n_sites, seed = case
        for info in available_backends():
            batched = make_engine(seed=seed, n_taxa=n_taxa,
                                  n_sites=n_sites, backend=info.name)
            per_op = make_engine(seed=seed, n_taxa=n_taxa,
                                 n_sites=n_sites, backend=info.name)
            per_op.executor.batch = False
            root = batched.default_edge()
            lnl_b = batched.log_likelihood(root)
            lnl_p = per_op.log_likelihood(root)
            assert lnl_b == pytest.approx(lnl_p, abs=1e-10), info.name
            assert set(batched._clas) == set(per_op._clas)
            for node, (z_b, sc_b) in batched._clas.items():
                z_p, sc_p = per_op._clas[node]
                np.testing.assert_allclose(
                    z_b, z_p, atol=1e-10, rtol=0,
                    err_msg=f"{info.name}: CLA mismatch at node {node}",
                )
                np.testing.assert_array_equal(sc_b, sc_p)


# ----------------------------------------------------------------------
# invalidation: planned waves == signature-stale nodes
# ----------------------------------------------------------------------
def stale_nodes(engine, root_edge):
    """Oracle: directed nodes whose cached validity entry is outdated."""
    tree = engine.tree
    sigs = engine._signatures(root_edge)
    return {
        node
        for node, _p, up in tree.postorder(root_edge)
        if not tree.is_leaf(node)
        and engine._valid.get(node) != (up, sigs[(node, up)])
    }


def planned_nodes(plan):
    return {op.node for op in plan.iter_ops()}


class TestMoveInvalidation:
    def test_revalidation_plans_nothing(self):
        engine = make_engine(seed=3)
        root = engine.default_edge()
        engine.log_likelihood(root)
        plan = engine.plan_execution(root)
        assert plan.n_ops == 0
        assert plan.depth == 0

    def test_nni_plans_exactly_stale_nodes(self):
        engine = make_engine(seed=5)
        tree = engine.tree
        root = engine.default_edge()
        engine.log_likelihood(root)
        r_ends = {tree.edge(root).u, tree.edge(root).v}
        internal = [
            eid for eid in tree.edge_ids
            if not tree.is_leaf(tree.edge(eid).u)
            and not tree.is_leaf(tree.edge(eid).v)
            and eid != root
            and not ({tree.edge(eid).u, tree.edge(eid).v} & r_ends)
        ]
        eid = internal[0]
        u, v = tree.edge(eid).u, tree.edge(eid).v
        tree.nni_swap(eid, 0)
        expected = stale_nodes(engine, root)
        plan = engine.plan_execution(root)
        got = planned_nodes(plan)
        assert got == expected
        # semantic floor: both endpoints of the swapped edge re-run
        assert {u, v} <= got
        # independent containment oracle: a replanned node either touches
        # the swapped edge or sees it inside its directed subtree
        for node, _p, up in tree.postorder(root):
            if tree.is_leaf(node) or node not in got:
                continue
            below = set(tree.dfs_from(node, up))
            touches_swap = bool(below & {u, v}) or any(
                tree.edge(e).other(node) in (u, v)
                for e in tree.incident_edges(node)
            )
            assert touches_swap, f"node {node} replanned without cause"
        # after execution the plan drains
        engine.ensure_valid(root)
        assert engine.plan_execution(root).n_ops == 0

    def test_spr_plans_exactly_stale_nodes_and_spares_pruned_subtree(self):
        engine = make_engine(seed=8, n_taxa=10)
        tree = engine.tree
        root = engine.default_edge()
        engine.log_likelihood(root)
        r_u = tree.edge(root).u
        # pick an internal-internal edge whose away-from-root side holds a
        # multi-node subtree, and a regraft target on the root side
        pend = target = sub_root = None
        for eid in tree.edge_ids:
            e = tree.edge(eid)
            if tree.is_leaf(e.u) or tree.is_leaf(e.v) or eid == root:
                continue
            # side away from the root edge
            away = e.u if r_u not in tree.dfs_from(e.u, eid) else e.v
            if tree.degree(e.other(away)) != 3:
                continue
            inner = {
                n for n in tree.dfs_from(away, eid)
                if not tree.is_leaf(n) and n != away
            }
            cands = [
                c for c in tree.spr_candidates(eid, radius=4, subtree_root=away)
                if c != root
            ]
            if inner and cands:
                pend, target, sub_root, interior = eid, cands[-1], away, inner
                break
        assert pend is not None, "no suitable SPR case in this topology"
        tree.spr(pend, target, subtree_root=sub_root)
        expected = stale_nodes(engine, root)
        plan = engine.plan_execution(root)
        assert planned_nodes(plan) == expected
        # the untouched interior of the pruned subtree is NOT recomputed
        assert not (planned_nodes(plan) & interior)
        # executing the incremental plan reproduces a from-scratch engine
        engine.ensure_valid(root)
        fresh = LikelihoodEngine(
            engine.patterns, tree, engine.model, engine.rates_model
        )
        assert engine.log_likelihood(root) == pytest.approx(
            fresh.log_likelihood(root), abs=1e-9
        )


# ----------------------------------------------------------------------
# wave statistics and executors
# ----------------------------------------------------------------------
class TestWaveStats:
    def test_stats_accumulate_and_reset(self):
        engine = make_engine(seed=1)
        root = engine.default_edge()
        engine.log_likelihood(root)
        stats = engine.wave_stats
        assert stats.plans == 1
        assert stats.ops == engine.tree.n_leaves - 2
        assert stats.waves == len(stats.last_plan)
        assert stats.max_width >= 1
        assert stats.mean_width == pytest.approx(stats.ops / stats.waves)
        assert sum(stats.kernel_mix.values()) == stats.ops
        # cumulative across runs
        engine.drop_caches()
        engine.log_likelihood(root)
        assert engine.wave_stats.plans == 2
        engine.reset_profile()
        empty = engine.wave_stats
        assert empty.plans == 0 and empty.ops == 0 and empty.seconds == 0.0
        assert engine.counters.total_calls() == 0

    def test_stats_roundtrip_and_merge(self):
        a = WaveStats(plans=1, waves=2, ops=5, max_width=3,
                      batched_ops=3, seconds=0.5, bytes_moved=100,
                      kernel_mix={"newview_tip_tip": 5})
        b = WaveStats.from_dict(a.to_dict())
        assert b.ops == 5 and b.max_width == 3 and b.batched_ops == 3
        b.merge(a)
        assert b.ops == 10 and b.plans == 2 and b.max_width == 3
        b.reset()
        assert b.ops == 0 and b.kernel_mix == {}

    def test_batched_flag_tracks_backend_capability(self):
        ref = make_engine(seed=2, backend="reference")
        blk = make_engine(seed=2, backend="blocked")
        ref.log_likelihood()
        blk.log_likelihood()
        assert ref.wave_stats.batched_ops == 0  # no newview_batch hook
        multi = [w for w in blk.wave_stats.last_plan if w.width > 1]
        assert all(w.batched for w in multi)

    def test_trace_carries_wave_summary(self):
        from repro.perf.trace import KernelTrace, trace_from_profile

        engine = make_engine(seed=4)
        engine.reset_profile()
        engine.log_likelihood()
        trace = trace_from_profile(
            engine.backend.profile,
            n_taxa=engine.tree.n_leaves,
            traced_sites=engine.patterns.n_patterns,
            wave_stats=engine.wave_stats,
        )
        assert trace.wave_summary is not None
        assert trace.wave_summary["ops"] == engine.wave_stats.ops
        again = KernelTrace.from_json(trace.to_json())
        assert again.wave_summary == trace.wave_summary


class TestFusionAndParallelDrivers:
    def test_fuse_plans_interleaves_partitions(self):
        e1 = make_engine(seed=11)
        e2 = LikelihoodEngine(
            make_case(seed=12)[0], e1.tree, gtr(), GammaRates(1.0, 4)
        )
        p1 = e1.plan_execution(e1.default_edge())
        p2 = e2.plan_execution(e1.default_edge())
        fused = fuse_plans([p1, p2])
        assert fused.depth == max(p1.depth, p2.depth)
        assert fused.n_ops == p1.n_ops + p2.n_ops
        assert fused.max_width <= p1.max_width + p2.max_width
        parts0 = {i for i, _ in fused.waves[0].parts}
        assert parts0 == {0, 1}

    def test_partitioned_engine_wave_stats(self):
        patterns, tree = make_case(seed=13)
        parts = [
            Partition("g1", patterns, gtr(), GammaRates(0.9, 4)),
            Partition("g2", make_case(seed=14)[0], gtr(), GammaRates(1.3, 4)),
        ]
        pe = PartitionedEngine(parts, tree)
        pe.log_likelihood()
        stats = pe.wave_stats
        assert stats.ops == 2 * (tree.n_leaves - 2)
        pe.reset_profile()
        assert pe.wave_stats.ops == 0

    def test_forkjoin_one_region_per_wave(self):
        patterns, tree = make_case(seed=15, n_sites=40)
        fj = ForkJoinEngine(patterns, tree, gtr(), GammaRates(1.0, 4),
                            n_threads=2)
        depth = fj.workers[0].plan_execution(fj.default_edge()).depth
        assert depth > 0
        fj.log_likelihood()
        # depth wave regions + 1 evaluate region
        assert fj.parallel_regions == depth + 1
        assert fj.wave_stats.ops == 2 * (tree.n_leaves - 2)

    def test_distributed_counts_wave_boundaries_without_comm(self):
        patterns, tree = make_case(seed=16, n_sites=40)
        de = DistributedEngine(patterns, tree, gtr(), GammaRates(1.0, 4),
                               n_ranks=2)
        comm0 = de.comm_seconds
        de.ensure_valid(de.default_edge())
        assert de.wave_boundaries > 0
        assert de.comm_seconds == comm0  # no message between newviews
        de.log_likelihood()
        assert de.comm_seconds > comm0  # only the evaluate AllReduce pays


# ----------------------------------------------------------------------
# scheduling cost model
# ----------------------------------------------------------------------
class TestWaveCostModel:
    def test_wave_time_batching_amortises_serial_overhead(self):
        from repro.perf import XEON_PHI_5110P_1S, CostModel

        model = CostModel(XEON_PHI_5110P_1S)
        per_op = model.wave_time("newview", 10_000, width=8, batched=False)
        batched = model.wave_time("newview", 10_000, width=8, batched=True)
        assert batched < per_op
        saved = per_op - batched
        assert saved == pytest.approx(7 * model.serial_overhead_s("newview"))
        assert model.wave_time("newview", 10_000, width=0) == 0.0
        with pytest.raises(KeyError):
            model.wave_time("bogus", 100, width=1)

    def test_wave_schedule_costs_decomposition(self):
        from repro.perf import XEON_PHI_5110P_1S, CostModel, wave_schedule_costs

        model = CostModel(XEON_PHI_5110P_1S)
        engine = make_engine(seed=17)
        engine.log_likelihood()
        costs = wave_schedule_costs(model, engine.wave_stats, sites=100_000)
        assert costs["ops"] == engine.wave_stats.ops
        assert costs["waves"] == engine.wave_stats.waves
        assert costs["batch_saving_s"] == pytest.approx(
            costs["per_op_serial_s"] - costs["serial_depth_s"]
        )
        assert costs["batched_total_s"] <= costs["per_op_total_s"]
        # dict payload (as attached to a trace) is accepted too
        again = wave_schedule_costs(
            model, engine.wave_stats.to_dict(), sites=100_000
        )
        assert again == costs


class TestLevelizeUnit:
    def test_levelize_shapes_and_compat(self):
        engine = make_engine(seed=18)
        desc = engine.plan_traversal(engine.default_edge())
        plan = levelize(desc)
        assert isinstance(plan, ExecutionPlan)
        assert isinstance(plan.waves[0], Wave)
        assert plan.n_ops == len(desc.ops)
        assert [op.node for op in plan.iter_ops()].sort() == [
            op.node for op in desc.ops
        ].sort()
        # the retained compatibility entry point executes plans too
        engine.execute_traversal(desc)
        assert engine.plan_execution(engine.default_edge()).n_ops == 0
