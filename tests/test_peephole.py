"""Tests for the peephole optimiser: semantics preserved, work removed."""

import numpy as np
import pytest

from repro.mic import MIC512, Instruction, Op, VectorProgram, xeon_phi_device
from repro.mic.compiler import ArrayRef, Loop, auto_vectorize
from repro.mic.peephole import (
    eliminate_dead_stores,
    eliminate_redundant_loads,
    optimize_program,
)


@pytest.fixture()
def vm():
    return xeon_phi_device().make_vm()


class TestRedundantLoadElimination:
    def test_same_address_loaded_twice(self, vm):
        a = vm.alloc(8)
        vm.write_array(a, np.arange(8.0))
        prog = VectorProgram("p")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a))
        prog.emit(Instruction(Op.VLOAD, dest="v1", addr=a))  # redundant
        prog.emit(Instruction(Op.VMUL, dest="v2", srcs=("v0", "v1")))
        res = eliminate_redundant_loads(prog, MIC512)
        assert res.instructions_removed == 1
        vm.run(res.program)
        np.testing.assert_array_equal(vm.vreg("v2"), np.arange(8.0) ** 2)

    def test_store_invalidates(self, vm):
        a = vm.alloc(8)
        prog = VectorProgram("p")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a))
        prog.emit(Instruction(Op.VSET, dest="v9", values=(1.0,) * 8))
        prog.emit(Instruction(Op.VSTORE, srcs=("v9",), addr=a))
        prog.emit(Instruction(Op.VLOAD, dest="v1", addr=a))  # NOT redundant
        res = eliminate_redundant_loads(prog, MIC512)
        assert res.instructions_removed == 0

    def test_register_overwrite_invalidates(self, vm):
        a = vm.alloc(8)
        prog = VectorProgram("p")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a))
        prog.emit(Instruction(Op.VSET, dest="v0", values=(0.0,) * 8))
        prog.emit(Instruction(Op.VLOAD, dest="v1", addr=a))  # NOT redundant
        res = eliminate_redundant_loads(prog, MIC512)
        assert res.instructions_removed == 0

    def test_autovectorized_square_expression(self, vm):
        """a[i]*a[i] loads 'a' twice per chunk; RLE folds one away."""
        arrays = {"a": vm.alloc(16), "out": vm.alloc(16)}
        data = np.linspace(1, 2, 16)
        vm.write_array(arrays["a"], data)
        loop = Loop(16, "out", ArrayRef("a") * ArrayRef("a")).with_pragmas(
            "ivdep", "vector aligned"
        )
        prog, _ = auto_vectorize(loop, arrays, MIC512)
        res = eliminate_redundant_loads(prog, MIC512)
        assert res.instructions_removed == 2  # one per 8-wide chunk
        vm.run(res.program)
        np.testing.assert_allclose(vm.read_array(arrays["out"], 16), data**2)


class TestDeadStoreElimination:
    def test_overwritten_store_dropped(self, vm):
        a = vm.alloc(8)
        prog = VectorProgram("p")
        prog.emit(Instruction(Op.VSET, dest="v0", values=(1.0,) * 8))
        prog.emit(Instruction(Op.VSET, dest="v1", values=(2.0,) * 8))
        prog.emit(Instruction(Op.VSTORE, srcs=("v0",), addr=a))  # dead
        prog.emit(Instruction(Op.VSTORE, srcs=("v1",), addr=a))
        res = eliminate_dead_stores(prog, MIC512)
        assert res.instructions_removed == 1
        vm.run(res.program)
        np.testing.assert_array_equal(vm.read_array(a, 8), np.full(8, 2.0))

    def test_intervening_load_keeps_store(self, vm):
        a = vm.alloc(8)
        prog = VectorProgram("p")
        prog.emit(Instruction(Op.VSET, dest="v0", values=(1.0,) * 8))
        prog.emit(Instruction(Op.VSTORE, srcs=("v0",), addr=a))
        prog.emit(Instruction(Op.VLOAD, dest="v1", addr=a))  # reads it
        prog.emit(Instruction(Op.VSTORE, srcs=("v1",), addr=a))
        res = eliminate_dead_stores(prog, MIC512)
        assert res.instructions_removed == 0


class TestOptimizeProgram:
    def test_kernel_semantics_preserved(self, vm):
        """Full pipeline on a real kernel: identical outputs, fewer ops."""
        from repro.core.vectorized import emit_derivative_sum, setup_buffers

        rng = np.random.default_rng(0)
        zl = rng.uniform(0.1, 1.0, size=(16, 4, 4))
        zr = rng.uniform(0.1, 1.0, size=(16, 4, 4))
        bufs = setup_buffers(vm, zl, zr)
        prog = emit_derivative_sum(vm.isa, bufs)
        res = optimize_program(prog, vm.isa)
        vm.run(prog)
        baseline = vm.read_array(bufs.out, 16 * 16)
        vm.write_array(bufs.out, np.zeros(16 * 16))
        vm.run(res.program)
        np.testing.assert_array_equal(vm.read_array(bufs.out, 16 * 16), baseline)

    def test_savings_reported(self, vm):
        a = vm.alloc(8)
        prog = VectorProgram("p")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a))
        prog.emit(Instruction(Op.VLOAD, dest="v1", addr=a))
        prog.emit(Instruction(Op.VMUL, dest="v2", srcs=("v0", "v1")))
        prog.emit(Instruction(Op.VSTORE, srcs=("v2",), addr=a + 64))
        res = optimize_program(prog, MIC512)
        assert res.instructions_removed == 1
        assert res.issue_cycles_saved > 0
        assert len(res.program) == len(prog) - 1
