"""Perf-regression ledger tests: schema, legacy ingestion, comparison.

Three layers:

* unit: fingerprints, direction heuristics, save/load round-trip,
  schema rejection;
* ingestion: every committed legacy ``BENCH_*.json`` loads through the
  unified adapters, and the committed ``PERF_LEDGER.json`` baseline
  parses;
* comparison: property-based (hypothesis) — identical ledgers never
  regress; a uniform 2x slowdown on duration metrics is always flagged
  — plus the CLI contract (``repro bench --compare`` exits nonzero on
  regression, zero with ``--report-only``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.ledger import (
    DEFAULT_THRESHOLD,
    SCHEMA,
    Ledger,
    LedgerEntry,
    compare,
    config_fingerprint,
    entries_from_report,
    load_report,
    metric_direction,
    render_compare,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
LEGACY_REPORTS = [
    REPO_ROOT / f"BENCH_{name}.json"
    for name in ("obs", "backends", "scheduler", "gradients", "parallel")
]


# ----------------------------------------------------------------------
# unit
# ----------------------------------------------------------------------
class TestEntryAndLedger:
    def test_fingerprint_is_stable_and_order_independent(self):
        a = config_fingerprint({"sites": 1000, "backend": "blocked"})
        b = config_fingerprint({"backend": "blocked", "sites": 1000})
        assert a == b
        assert len(a) == 12
        assert a != config_fingerprint({"sites": 2000, "backend": "blocked"})

    def test_entry_auto_fingerprints_and_keys(self):
        e = LedgerEntry("bench_x", config={"sites": 10}, metrics={"t_s": 1.0})
        assert e.fingerprint == config_fingerprint({"sites": 10})
        assert e.key == ("bench_x", e.fingerprint)
        assert LedgerEntry.from_dict(e.to_dict()) == e

    def test_save_load_round_trip(self, tmp_path):
        led = Ledger(
            [
                LedgerEntry("a", {"n": 1}, {"wall_s": 2.0}),
                LedgerEntry("b", {"n": 2}, {"speedup": 3.5}),
            ]
        )
        path = led.save(tmp_path / "ledger.json")
        again = Ledger.load(path)
        assert len(again) == 2
        assert again.benchmarks() == ["a", "b"]
        assert again.entries[0] == led.entries[0]
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_load_rejects_foreign_json(self, tmp_path):
        bad = tmp_path / "not_a_ledger.json"
        bad.write_text(json.dumps({"results": [1, 2, 3]}))
        with pytest.raises(ValueError, match="not a perf ledger"):
            Ledger.load(bad)

    def test_by_key_is_latest_wins(self):
        old = LedgerEntry("a", {"n": 1}, {"wall_s": 2.0})
        new = LedgerEntry("a", {"n": 1}, {"wall_s": 1.0})
        led = Ledger([old, new])
        assert led.by_key()[old.key].metrics["wall_s"] == 1.0

    def test_metric_direction_conventions(self):
        assert metric_direction("wall_s") == "lower"
        assert metric_direction("blocked.per_op_s") == "lower"
        assert metric_direction("probe_ns") == "lower"
        assert metric_direction("disabled_overhead_ratio") == "lower"
        assert metric_direction("speedup") == "higher"
        assert metric_direction("modes.fork.speedup") == "higher"
        assert metric_direction("dispatches") is None  # informational
        assert metric_direction("n_events") is None


# ----------------------------------------------------------------------
# legacy ingestion
# ----------------------------------------------------------------------
class TestLegacyIngestion:
    @pytest.mark.parametrize(
        "path", LEGACY_REPORTS, ids=[p.stem for p in LEGACY_REPORTS]
    )
    def test_every_committed_bench_report_loads(self, path):
        entries = load_report(path)
        assert entries, f"{path.name} produced no ledger entries"
        for e in entries:
            assert e.source == path.name
            assert e.fingerprint
            assert e.metrics, f"{path.name} entry has no metrics"
            assert all(
                isinstance(v, float) for v in e.metrics.values()
            ), "metrics must be flat floats"
            # at least one metric per report is a regression signal
        assert any(
            metric_direction(m) is not None
            for e in entries
            for m in e.metrics
        ), f"{path.name}: no directional metric survived ingestion"

    def test_unified_shape_ingests(self):
        report = {
            "benchmark": "bench_new",
            "entries": [
                {"config": {"k": 1}, "metrics": {"wall_s": 0.5, "nested": {"x_us": 2}}}
            ],
        }
        (entry,) = entries_from_report(report, source="inline")
        assert entry.benchmark == "bench_new"
        assert entry.metrics == {"wall_s": 0.5, "nested.x_us": 2.0}

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError, match="unrecognised"):
            entries_from_report({"mystery": True})

    def test_committed_baseline_ledger_parses(self):
        led = Ledger.load(REPO_ROOT / "PERF_LEDGER.json")
        assert len(led) > 0
        assert set(led.benchmarks()) == {
            "bench_obs",
            "bench_backends",
            "bench_scheduler",
            "bench_gradients",
            "bench_parallel",
            "bench_serving",
        }


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _ledger_from_metrics(metrics: dict[str, float]) -> Ledger:
    return Ledger([LedgerEntry("bench_t", {"case": 1}, dict(metrics))])


_metric_names = st.sampled_from(
    ["wall_s", "per_op_s", "probe_ns", "overhead_ratio", "speedup", "fork.t_s"]
)
_metric_values = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestCompare:
    @given(metrics=st.dictionaries(_metric_names, _metric_values, min_size=1))
    @settings(max_examples=80, deadline=None)
    def test_identical_ledgers_never_regress(self, metrics):
        led = _ledger_from_metrics(metrics)
        regressions, deltas = compare(led, _ledger_from_metrics(metrics))
        assert regressions == []
        assert all(d.worsening == pytest.approx(0.0) for d in deltas)

    @given(
        metrics=st.dictionaries(
            st.sampled_from(["wall_s", "per_op_s", "probe_ns"]),
            st.floats(
                min_value=1e-6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_doubling_every_duration_is_flagged(self, metrics):
        baseline = _ledger_from_metrics(metrics)
        current = _ledger_from_metrics({k: v * 2 for k, v in metrics.items()})
        regressions, deltas = compare(baseline, current, DEFAULT_THRESHOLD)
        assert len(deltas) == len(metrics)
        assert len(regressions) == len(metrics)
        assert all(d.worsening == pytest.approx(1.0) for d in regressions)

    def test_speedup_direction_is_inverted(self):
        base = _ledger_from_metrics({"speedup": 4.0})
        worse = _ledger_from_metrics({"speedup": 2.0})
        better = _ledger_from_metrics({"speedup": 8.0})
        regressions, _ = compare(base, worse)
        assert len(regressions) == 1 and regressions[0].worsening == pytest.approx(1.0)
        regressions, deltas = compare(base, better)
        assert regressions == []
        assert deltas[0].worsening == pytest.approx(-0.5)

    def test_disjoint_keys_and_nonpositive_values_are_skipped(self):
        base = Ledger([LedgerEntry("a", {"n": 1}, {"wall_s": 1.0, "zero_s": 0.0})])
        cur = Ledger(
            [
                LedgerEntry("a", {"n": 1}, {"wall_s": 1.05, "zero_s": 5.0}),
                LedgerEntry("b", {"n": 9}, {"wall_s": 99.0}),  # no baseline
            ]
        )
        regressions, deltas = compare(base, cur)
        assert [d.metric for d in deltas] == ["wall_s"]  # zero baseline skipped
        assert regressions == []

    def test_render_names_the_regressed_metric(self):
        base = _ledger_from_metrics({"wall_s": 1.0})
        cur = _ledger_from_metrics({"wall_s": 3.0})
        regressions, deltas = compare(base, cur)
        text = render_compare(regressions, deltas, DEFAULT_THRESHOLD)
        assert "REGRESSED" in text and "wall_s" in text and "+200.0%" in text


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
class TestBenchCli:
    def _write_ledgers(self, tmp_path, factor):
        baseline = Ledger([LedgerEntry("bench_t", {"case": 1}, {"wall_s": 1.0})])
        current = Ledger(
            [LedgerEntry("bench_t", {"case": 1}, {"wall_s": 1.0 * factor})]
        )
        b = baseline.save(tmp_path / "baseline.json")
        c = current.save(tmp_path / "current.json")
        return b, c

    def test_compare_exits_nonzero_on_synthetic_regression(self, tmp_path, capsys):
        from repro.cli import main

        b, c = self._write_ledgers(tmp_path, factor=2.0)
        rc = main(["bench", "--compare", str(b), "--current", str(c)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        b, c = self._write_ledgers(tmp_path, factor=1.0)
        rc = main(["bench", "--compare", str(b), "--current", str(c)])
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_report_only_downgrades_regressions_to_advisory(self, tmp_path):
        from repro.cli import main

        b, c = self._write_ledgers(tmp_path, factor=2.0)
        rc = main(
            ["bench", "--compare", str(b), "--current", str(c), "--report-only"]
        )
        assert rc == 0

    def test_import_builds_a_ledger_from_legacy_reports(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "ledger.json"
        rc = main(
            [
                "bench",
                "--import",
                *[str(p) for p in LEGACY_REPORTS],
                "--ledger",
                str(out),
            ]
        )
        assert rc == 0
        led = Ledger.load(out)
        assert len(led.benchmarks()) == 5

    def test_list_and_unknown_suite(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for suite in ("obs", "backends", "scheduler", "gradients", "parallel"):
            assert suite in out
        assert main(["bench", "nonexistent-suite"]) == 2
