"""Unit tests for substitution models and eigensystems."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.phylo.models import (
    SubstitutionModel,
    gtr,
    hky85,
    jc69,
    k80,
    poisson_protein,
)


def random_gtr(seed: int) -> SubstitutionModel:
    rng = np.random.default_rng(seed)
    ex = rng.uniform(0.2, 5.0, size=6)
    pi = rng.dirichlet(np.ones(4) * 5)
    return gtr(ex, pi)


class TestRateMatrix:
    def test_rows_sum_to_zero(self):
        q = random_gtr(1).rate_matrix()
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-12)

    def test_normalised_to_unit_rate(self):
        m = random_gtr(2)
        q = m.rate_matrix()
        rate = -np.dot(m.frequencies, np.diag(q))
        assert rate == pytest.approx(1.0)

    def test_detailed_balance(self):
        m = random_gtr(3)
        q = m.rate_matrix()
        pi = m.frequencies
        flux = pi[:, None] * q
        np.testing.assert_allclose(flux, flux.T, atol=1e-12)

    def test_stationary_distribution(self):
        m = random_gtr(4)
        q = m.rate_matrix()
        np.testing.assert_allclose(m.frequencies @ q, 0.0, atol=1e-12)

    def test_jc69_off_diagonals_equal(self):
        q = jc69().rate_matrix()
        off = q[~np.eye(4, dtype=bool)]
        np.testing.assert_allclose(off, off[0])


class TestValidation:
    def test_wrong_exchangeability_count(self):
        with pytest.raises(ValueError, match="exchangeabilities"):
            SubstitutionModel("bad", np.ones(5), np.full(4, 0.25))

    def test_negative_rate_rejected(self):
        ex = np.ones(6)
        ex[2] = -1
        with pytest.raises(ValueError, match="positive"):
            SubstitutionModel("bad", ex, np.full(4, 0.25))

    def test_frequencies_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            SubstitutionModel("bad", np.ones(6), np.array([0.3, 0.3, 0.3, 0.3]))


class TestEigenSystem:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_transition_matrix_matches_expm(self, seed):
        m = random_gtr(seed)
        eig = m.eigen()
        q = m.rate_matrix()
        for t in (0.01, 0.1, 1.0, 5.0):
            np.testing.assert_allclose(
                eig.transition_matrix(t), expm(q * t), atol=1e-10
            )

    def test_p_zero_is_identity(self):
        eig = random_gtr(5).eigen()
        np.testing.assert_allclose(eig.transition_matrix(0.0), np.eye(4), atol=1e-12)

    def test_p_rows_are_distributions(self):
        eig = random_gtr(6).eigen()
        p = eig.transition_matrix(0.7)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-10)
        assert np.all(p >= -1e-12)

    def test_p_infinity_approaches_stationary(self):
        m = random_gtr(7)
        p = m.eigen().transition_matrix(500.0)
        for row in p:
            np.testing.assert_allclose(row, m.frequencies, atol=1e-8)

    def test_chapman_kolmogorov(self):
        eig = random_gtr(8).eigen()
        p1 = eig.transition_matrix(0.3)
        p2 = eig.transition_matrix(0.5)
        np.testing.assert_allclose(p1 @ p2, eig.transition_matrix(0.8), atol=1e-10)

    def test_orthogonality_identity(self):
        """U^T diag(pi) U = I — the identity the kernels rely on."""
        m = random_gtr(9)
        eig = m.eigen()
        w = eig.u.T @ np.diag(m.frequencies) @ eig.u
        np.testing.assert_allclose(w, np.eye(4), atol=1e-10)

    def test_u_uinv_are_inverses(self):
        eig = random_gtr(10).eigen()
        np.testing.assert_allclose(eig.u @ eig.u_inv, np.eye(4), atol=1e-10)

    def test_batched_matches_scalar(self):
        eig = random_gtr(11).eigen()
        ts = np.array([0.1, 0.2, 0.9])
        batched = eig.transition_matrices(ts)
        for i, t in enumerate(ts):
            np.testing.assert_allclose(batched[i], eig.transition_matrix(t))

    def test_negative_branch_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            random_gtr(12).eigen().transition_matrix(-0.1)


class TestNamedModels:
    def test_k80_transition_bias(self):
        q = k80(kappa=5.0).rate_matrix()
        # A<->G (transition) rate should be 5x A<->C (transversion)
        assert q[0, 2] / q[0, 1] == pytest.approx(5.0)

    def test_hky_uses_frequencies(self):
        pi = np.array([0.4, 0.3, 0.2, 0.1])
        m = hky85(2.0, pi)
        np.testing.assert_allclose(m.frequencies, pi)

    def test_protein_model(self):
        m = poisson_protein()
        assert m.n_states == 20
        q = m.rate_matrix()
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-12)
        p = m.eigen().transition_matrix(0.5)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-10)
