"""Tests for the paper's future-work extensions: CAT, protein data,
partitioned alignments, EPA placement."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core import LikelihoodEngine
from repro.core.cat import CatLikelihoodEngine
from repro.core.partitioned import Partition, PartitionedEngine, partition_workers
from repro.phylo import (
    Alignment,
    CatRates,
    GammaRates,
    Tree,
    gtr,
    poisson_protein,
    simulate_alignment,
    simulate_dataset,
)
from repro.search import optimize_all_branches, optimize_branch
from repro.search.epa import place_queries


@pytest.fixture(scope="module")
def cat_setup():
    sim = simulate_dataset(n_taxa=6, n_sites=80, seed=9)
    pat = sim.alignment.compress()
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    rng = np.random.default_rng(1)
    cat = CatRates.from_gamma(0.7, pat.n_patterns, 4, rng, weights=pat.weights)
    engine = CatLikelihoodEngine(pat, sim.tree.copy(), model, cat)
    return sim, pat, model, cat, engine


class TestCatEngine:
    def test_matches_per_site_brute_force(self, cat_setup):
        sim, pat, model, cat, engine = cat_setup
        tree = engine.tree
        q = model.rate_matrix()
        pi = model.frequencies
        tt = pat.states.tip_table()

        def cond(node, up, r):
            if tree.is_leaf(node):
                return tt[pat.row(tree.name(node))]
            out = np.ones((pat.n_patterns, 4))
            for ch, eid in tree.children(node, up):
                p = expm(q * r * tree.edge(eid).length)
                out *= cond(ch, eid, r) @ p.T
            return out

        e0 = tree.edge_ids[0]
        edge = tree.edge(e0)
        total = np.zeros(pat.n_patterns)
        for c, r in enumerate(cat.category_rates):
            mask = cat.site_categories == c
            p = expm(q * r * edge.length)
            wl = cond(edge.u, e0, r)
            wr = cond(edge.v, e0, r)
            site = np.einsum("pi,i,ij,pj->p", wl, pi, p, wr)
            total[mask] = site[mask]
        brute = float(np.dot(np.log(total), pat.weights))
        assert engine.log_likelihood() == pytest.approx(brute, abs=1e-9)

    def test_pulley_principle(self, cat_setup):
        *_, engine = cat_setup
        vals = [engine.log_likelihood(e) for e in engine.tree.edge_ids]
        assert max(vals) - min(vals) < 1e-9

    def test_derivatives_match_finite_difference(self, cat_setup):
        *_, engine = cat_setup
        tree = engine.tree
        eid = tree.edge_ids[2]
        sumbuf = engine.edge_sum_buffer(eid)
        t0 = tree.edge(eid).length
        _, d1, _ = engine.branch_derivatives(sumbuf, t0)
        h = 1e-6

        def lnl_at(t):
            tree.edge(eid).length = t
            return engine.log_likelihood(eid)

        fd = (lnl_at(t0 + h) - lnl_at(t0 - h)) / (2 * h)
        tree.edge(eid).length = t0
        assert d1 == pytest.approx(fd, rel=1e-4, abs=1e-3)

    def test_branch_optimization_runs(self, cat_setup):
        sim, pat, model, cat, _ = cat_setup
        engine = CatLikelihoodEngine(pat, sim.tree.copy(), model, cat)
        before = engine.log_likelihood()
        after = optimize_all_branches(engine, passes=2)
        assert after >= before

    def test_set_alpha_rebuilds_rates(self, cat_setup):
        sim, pat, model, cat, _ = cat_setup
        engine = CatLikelihoodEngine(pat, sim.tree.copy(), model, cat)
        lnl1 = engine.log_likelihood()
        engine.set_alpha(5.0)
        lnl2 = engine.log_likelihood()
        assert engine.alpha == 5.0
        assert lnl1 != lnl2
        # normalisation maintained
        mean = np.average(engine.site_rates, weights=pat.weights)
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_assignment_size_validated(self, cat_setup):
        sim, pat, model, cat, _ = cat_setup
        bad = CatRates(cat.category_rates, cat.site_categories[:-1])
        with pytest.raises(ValueError, match="patterns"):
            CatLikelihoodEngine(pat, sim.tree.copy(), model, bad)

    def test_single_category_cat_equals_no_gamma(self):
        """CAT with one unit category == plain engine without Gamma."""
        sim = simulate_dataset(n_taxa=5, n_sites=50, seed=12, alpha=None)
        pat = sim.alignment.compress()
        model = gtr()
        cat = CatRates(np.array([1.0]), np.zeros(pat.n_patterns, dtype=int))
        cat_engine = CatLikelihoodEngine(pat, sim.tree.copy(), model, cat)
        plain = LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(1.0, 1))
        assert cat_engine.log_likelihood() == pytest.approx(
            plain.log_likelihood(), abs=1e-9
        )


class TestProteinData:
    def test_protein_likelihood_runs(self):
        model = poisson_protein()
        tree = Tree.from_newick("((a:0.2,b:0.3):0.1,(c:0.2,d:0.4):0.1);")
        rng = np.random.default_rng(3)
        sim = simulate_alignment(tree, model, 120, rng, gamma=GammaRates(0.8, 4))
        pat = sim.alignment.compress()
        engine = LikelihoodEngine(pat, tree.copy(), model, GammaRates(0.8, 4))
        lnl = engine.log_likelihood()
        assert np.isfinite(lnl) and lnl < 0

    def test_protein_pulley(self):
        model = poisson_protein()
        tree = Tree.from_newick("((a:0.2,b:0.3):0.1,(c:0.2,d:0.4):0.1);")
        rng = np.random.default_rng(4)
        sim = simulate_alignment(tree, model, 60, rng)
        engine = LikelihoodEngine(sim.alignment.compress(), tree, model)
        vals = [engine.log_likelihood(e) for e in tree.edge_ids]
        assert max(vals) - min(vals) < 1e-8

    def test_protein_branch_opt(self):
        model = poisson_protein()
        tree = Tree.from_newick("((a:0.2,b:0.3):0.1,(c:0.2,d:0.4):0.1);")
        rng = np.random.default_rng(5)
        sim = simulate_alignment(tree, model, 200, rng)
        engine = LikelihoodEngine(sim.alignment.compress(), tree.copy(), model)
        eid = engine.tree.edge_ids[0]
        engine.tree.edge(eid).length = 3.0
        before = engine.log_likelihood()
        optimize_branch(engine, eid)
        assert engine.log_likelihood() > before


class TestPartitionedEngine:
    @pytest.fixture()
    def partitioned(self):
        sim1 = simulate_dataset(n_taxa=6, n_sites=100, seed=21)
        tree = sim1.tree
        # second partition: same tree, different model, different sites
        model2 = gtr(
            np.array([0.8, 5.0, 1.0, 1.0, 5.0, 1.0]),
            np.array([0.35, 0.15, 0.15, 0.35]),
        )
        rng = np.random.default_rng(22)
        sim2 = simulate_alignment(tree, model2, 150, rng, gamma=GammaRates(0.5, 4))
        parts = [
            Partition("gene1", sim1.alignment.compress(), gtr(), GammaRates(1.0, 4)),
            Partition("gene2", sim2.alignment.compress(), model2, GammaRates(0.5, 4)),
        ]
        return parts, tree

    def test_total_is_sum_of_partitions(self, partitioned):
        parts, tree = partitioned
        eng = PartitionedEngine(parts, tree.copy())
        separate = sum(
            LikelihoodEngine(p.patterns, tree.copy(), p.model, p.gamma).log_likelihood()
            for p in parts
        )
        assert eng.log_likelihood() == pytest.approx(separate, abs=1e-8)

    def test_branch_optimization_improves(self, partitioned):
        parts, tree = partitioned
        eng = PartitionedEngine(parts, tree.copy())
        rng = np.random.default_rng(0)
        for e in eng.tree.edges:
            e.length = float(rng.uniform(0.01, 1.0))
        before = eng.log_likelihood()
        after = optimize_all_branches(eng, passes=2)
        assert after > before

    def test_counters_aggregate(self, partitioned):
        parts, tree = partitioned
        eng = PartitionedEngine(parts, tree.copy())
        eng.log_likelihood()
        merged = eng.counters.merged()
        assert merged["evaluate"] == 2  # one per partition

    def test_taxon_set_mismatch_rejected(self, partitioned):
        parts, tree = partitioned
        other = simulate_dataset(n_taxa=5, n_sites=50, seed=30)
        bad = Partition(
            "bad", other.alignment.compress(), gtr(), GammaRates(1.0, 4)
        )
        with pytest.raises(ValueError, match="taxon set"):
            PartitionedEngine([parts[0], bad], tree.copy())


class TestPartitionLoadBalancing:
    def test_whole_scheme_keeps_partitions_intact(self):
        out = partition_workers([100, 50, 30, 20], 2, scheme="whole")
        # each partition appears exactly once
        seen = sorted(idx for worker in out for idx, _ in worker)
        assert seen == [0, 1, 2, 3]

    def test_cyclic_scheme_balances_better(self):
        sizes = [1000, 10, 10, 10]
        whole = partition_workers(sizes, 4, scheme="whole")
        cyclic = partition_workers(sizes, 4, scheme="cyclic")

        def max_load(assignment):
            return max(sum(s for _, s in w) for w in assignment)

        assert max_load(cyclic) < max_load(whole)
        # both conserve total sites
        assert sum(s for w in cyclic for _, s in w) == sum(sizes)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            partition_workers([10], 2, scheme="bogus")


class TestEpaPlacement:
    @pytest.fixture(scope="class")
    def epa_case(self):
        sim = simulate_dataset(n_taxa=8, n_sites=600, seed=77)
        aln = sim.alignment
        query = aln.taxa[3]
        ref_tree = sim.tree.copy()
        leaf = ref_tree.node_by_name(query)
        pend = ref_tree.incident_edges(leaf)[0]
        rec = ref_tree.prune_subtree(pend, subtree_root=leaf)
        ref_tree.remove_node(leaf)
        ref_aln = Alignment.from_sequences(
            {t: aln.sequence(t) for t in aln.taxa if t != query}
        )
        return ref_aln, ref_tree, query, aln.sequence(query), rec

    def test_recovers_true_attachment(self, epa_case):
        ref_aln, ref_tree, query, seq, rec = epa_case
        results = place_queries(
            ref_aln, ref_tree, {query: seq}, gtr(), GammaRates(1.0, 4)
        )
        best = results[0].best
        # the true attachment region involves the old neighbours
        neighbour_names = {
            ref_tree.name(n)
            for n in (rec.attach_x, rec.attach_y)
            if ref_tree.name(n) is not None
        }
        assert neighbour_names & set(best.edge_label)

    def test_weight_ratios_normalised(self, epa_case):
        ref_aln, ref_tree, query, seq, _ = epa_case
        # Over the FULL candidate set the softmax sums to exactly 1.
        results = place_queries(
            ref_aln, ref_tree, {query: seq}, gtr(), GammaRates(1.0, 4),
            keep_best=10_000,
        )
        total = sum(p.weight_ratio for p in results[0].placements)
        assert total == pytest.approx(1.0)
        # ranked descending
        lnls = [p.log_likelihood for p in results[0].placements]
        assert lnls == sorted(lnls, reverse=True)
        # LWRs are computed before keep_best truncation, so the kept
        # subset's ratios match the full run's head and sum to <= 1.
        kept = place_queries(
            ref_aln, ref_tree, {query: seq}, gtr(), GammaRates(1.0, 4),
            keep_best=3,
        )[0].placements
        assert len(kept) == 3
        assert sum(p.weight_ratio for p in kept) <= 1.0 + 1e-12
        for full_p, kept_p in zip(results[0].placements, kept):
            assert kept_p.weight_ratio == full_p.weight_ratio

    def test_reference_tree_not_modified(self, epa_case):
        ref_aln, ref_tree, query, seq, _ = epa_case
        before = ref_tree.to_newick()
        place_queries(ref_aln, ref_tree, {query: seq}, gtr(), GammaRates(1.0, 4))
        assert ref_tree.to_newick() == before

    def test_misaligned_query_rejected(self, epa_case):
        ref_aln, ref_tree, query, seq, _ = epa_case
        with pytest.raises(ValueError, match="aligned"):
            place_queries(ref_aln, ref_tree, {"q": "ACGT"}, gtr())

    def test_name_collision_rejected(self, epa_case):
        ref_aln, ref_tree, query, seq, _ = epa_case
        taken = ref_aln.taxa[0]
        with pytest.raises(ValueError, match="collides"):
            place_queries(ref_aln, ref_tree, {taken: seq}, gtr())

    def test_empty_queries_rejected(self, epa_case):
        ref_aln, ref_tree, *_ = epa_case
        with pytest.raises(ValueError, match="query"):
            place_queries(ref_aln, ref_tree, {}, gtr())
