"""Tests for the experiment harness: every artefact renders and has the
paper's shape."""

import pytest

from repro.harness import (
    ablations,
    datasets,
    figure2,
    figure3,
    figure4,
    figure5,
    paper_values,
    table1,
    table3,
)


class TestTable1:
    def test_renders(self):
        text = table1.render_table1()
        assert "Xeon Phi 5110P" in text
        assert "NVIDIA K20" in text

    def test_premiums_match_paper_claims(self):
        prem = table1.baseline_premiums()
        assert prem["price_premium"] == pytest.approx(0.30, abs=0.05)
        assert prem["tdp_premium"] == pytest.approx(0.15, abs=0.03)


class TestFigure2:
    def test_streams_identical(self):
        pragma_prog, intr_prog, _, _ = figure2.figure2_programs()
        assert pragma_prog.disassembly() == intr_prog.disassembly()

    def test_render_reports_success(self):
        text = figure2.render_figure2()
        assert "identical: True" in text
        assert "correct:      True" in text


class TestFigure3:
    def test_speedups_shape(self):
        speedups = {s.kernel: s for s in figure3.figure3_speedups()}
        assert speedups["derivative_sum"].model > 2.5
        for k in ("newview", "evaluate", "derivative_core"):
            assert speedups[k].model <= 2.1
        # model within 10% of the paper on every kernel
        for s in speedups.values():
            assert s.model == pytest.approx(s.paper, rel=0.10)

    def test_render(self):
        assert "derivative_sum" in figure3.render_figure3()


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3.compute_table3()

    def test_four_systems(self, rows):
        assert len(rows) == 4

    def test_baseline_row_is_unity(self, rows):
        base = next(r for r in rows if "2680" in r.system)
        for s in base.speedups:
            assert s == pytest.approx(1.0)

    def test_mic_rows_match_paper_within_35_percent(self, rows):
        for row in rows:
            for model, paper in zip(row.speedups, row.paper_speedups):
                assert model == pytest.approx(paper, rel=0.35), row.system

    def test_2630_always_slower_than_baseline(self, rows):
        row = next(r for r in rows if "2630" in r.system)
        assert all(s < 1.0 for s in row.speedups)

    def test_render(self, rows):
        text = table3.render_table3()
        assert "Table III" in text
        assert "paper" in text


class TestFigure4:
    def test_monotone_growth(self):
        curve = figure4.compute_figure4()
        assert all(b > a for a, b in zip(curve, curve[1:]))

    def test_final_value_near_paper(self):
        curve = figure4.compute_figure4()
        assert curve[-1] == pytest.approx(1.84, abs=0.2)

    def test_render(self):
        assert "Figure 4" in figure4.render_figure4()


class TestFigure5:
    @pytest.fixture(scope="class")
    def savings(self):
        return figure5.compute_figure5()

    def test_one_mic_crosses_parity_near_100k(self, savings):
        mic = savings["1S Xeon Phi 5110P"]
        sizes = list(paper_values.DATASET_SIZES)
        below = mic[sizes.index(50_000)]
        above = mic[sizes.index(250_000)]
        assert below < 1.0 < above

    def test_one_mic_saturates_near_2_3(self, savings):
        assert savings["1S Xeon Phi 5110P"][-1] == pytest.approx(2.3, abs=0.25)

    def test_two_mics_less_efficient_than_one(self, savings):
        one = savings["1S Xeon Phi 5110P"]
        two = savings["2S Xeon Phi 5110P"]
        assert all(t < o for t, o in zip(two, one))

    def test_two_mics_beat_cpus_above_500k(self, savings):
        sizes = list(paper_values.DATASET_SIZES)
        idx = sizes.index(1_000_000)
        assert savings["2S Xeon Phi 5110P"][idx] > 1.0

    def test_paper_derived_figure5_consistent(self):
        paper = figure5.paper_figure5()
        # paper's own numbers: 1 MIC at 4000K saves ~2.3x
        assert paper["1S Xeon Phi 5110P"][-1] == pytest.approx(2.35, abs=0.1)

    def test_render(self):
        assert "Figure 5" in figure5.render_figure5()


class TestAblations:
    def test_offload_2x_at_small_sizes(self):
        res = ablations.offload_vs_native(n_sites=10_000)
        assert res.ratio > 1.8

    def test_offload_penalty_shrinks_with_size(self):
        small = ablations.offload_vs_native(n_sites=10_000)
        large = ablations.offload_vs_native(n_sites=1_000_000)
        assert small.ratio > large.ratio > 1.0

    def test_flat_mpi_substantial_slowdown(self):
        res = ablations.flat_vs_hybrid()
        assert res.ratio > 2.0

    def test_forkjoin_slower(self):
        res = ablations.forkjoin_vs_examl()
        assert res.ratio > 1.1

    def test_prefetch_sweep_monotone_then_flat(self):
        sweep = ablations.prefetch_distance_sweep(distances=(0, 2, 8))
        assert sweep[0] > 3 * sweep[2]
        assert sweep[8] <= sweep[2] * 1.05

    def test_site_blocking_wins(self):
        res = ablations.site_blocking_ablation(n_sites=128)
        assert res.ratio > 1.1

    def test_render(self):
        text = ablations.render_ablations()
        assert "offload" in text
        assert "Prefetch-distance sweep" in text


class TestDatasets:
    def test_paper_dataset_shape(self):
        sim = datasets.paper_dataset(2000)
        assert sim.alignment.n_taxa == 15
        assert sim.alignment.n_sites == 2000

    def test_trace_available(self):
        trace = datasets.default_trace()
        assert trace.n_taxa == 15
        assert trace.total_calls > 0
