"""Unit tests for Newick parsing and formatting."""

import pytest

from repro.phylo.newick import NewickError, format_newick, parse_newick


class TestParse:
    def test_simple_triplet(self):
        root = parse_newick("(a,b,c);")
        assert [c.label for c in root.children] == ["a", "b", "c"]

    def test_branch_lengths(self):
        root = parse_newick("(a:0.1,b:0.25);")
        assert root.children[0].length == pytest.approx(0.1)
        assert root.children[1].length == pytest.approx(0.25)

    def test_nested(self):
        root = parse_newick("((a,b),(c,d));")
        assert len(root.children) == 2
        assert [l.label for l in root.leaves()] == ["a", "b", "c", "d"]

    def test_internal_labels(self):
        root = parse_newick("((a,b)ab:0.5,c);")
        assert root.children[0].label == "ab"
        assert root.children[0].length == pytest.approx(0.5)

    def test_quoted_labels(self):
        root = parse_newick("('taxon one',b);")
        assert root.children[0].label == "taxon one"

    def test_comments_ignored(self):
        root = parse_newick("(a[comment],b);")
        assert root.children[0].label == "a"

    def test_scientific_notation_lengths(self):
        root = parse_newick("(a:1e-3,b:2.5E2);")
        assert root.children[0].length == pytest.approx(1e-3)
        assert root.children[1].length == pytest.approx(250.0)

    def test_whitespace_tolerated(self):
        root = parse_newick(" ( a , b ) ;\n")
        assert [c.label for c in root.children] == ["a", "b"]


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(a,b",
            "(a,b));",
            "(a:x,b);",
            "(a,'unterminated);",
            "(a[unclosed,b);",
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(NewickError):
            parse_newick(text)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "(a:0.100000,b:0.200000,c:0.300000);",
            "((a:0.100000,b:0.100000):0.050000,c:0.200000,d:0.300000);",
        ],
    )
    def test_roundtrip_exact(self, text):
        assert format_newick(parse_newick(text)) == text

    def test_quoting_applied_when_needed(self):
        root = parse_newick("('has space',b);")
        assert "'has space'" in format_newick(root)

    def test_leaves_order_preserved(self):
        text = "((d,c),(b,a));"
        root = parse_newick(text)
        assert [l.label for l in root.leaves()] == ["d", "c", "b", "a"]
