"""Tests for the INDELible-equivalent sequence simulator."""

import numpy as np
import pytest

from repro.phylo import (
    GammaRates,
    Tree,
    gtr,
    jc69,
    simulate_alignment,
    simulate_dataset,
)


class TestSimulateDataset:
    def test_shapes(self):
        sim = simulate_dataset(n_taxa=15, n_sites=1000, seed=0)
        assert sim.alignment.n_taxa == 15
        assert sim.alignment.n_sites == 1000
        assert sim.tree.n_leaves == 15

    def test_deterministic(self):
        a = simulate_dataset(n_taxa=6, n_sites=100, seed=42)
        b = simulate_dataset(n_taxa=6, n_sites=100, seed=42)
        np.testing.assert_array_equal(a.alignment.data, b.alignment.data)
        assert a.tree.robinson_foulds(b.tree) == 0

    def test_different_seeds_differ(self):
        a = simulate_dataset(n_taxa=6, n_sites=100, seed=1)
        b = simulate_dataset(n_taxa=6, n_sites=100, seed=2)
        assert not np.array_equal(a.alignment.data, b.alignment.data)

    def test_only_unambiguous_states(self):
        sim = simulate_dataset(n_taxa=5, n_sites=200, seed=3)
        assert set(np.unique(sim.alignment.data)) <= {1, 2, 4, 8}


class TestStatisticalProperties:
    def test_base_composition_approaches_stationary(self):
        """On long branches the simulated composition matches pi."""
        freqs = np.array([0.4, 0.1, 0.2, 0.3])
        model = gtr(np.ones(6), freqs)
        tree = Tree.from_newick("(a:5.0,b:5.0,c:5.0);")
        rng = np.random.default_rng(0)
        sim = simulate_alignment(tree, model, 30_000, rng)
        counts = np.zeros(4)
        for s in (1, 2, 4, 8):
            counts[int(np.log2(s))] = (sim.alignment.data == s).sum()
        observed = counts / counts.sum()
        np.testing.assert_allclose(observed, freqs, atol=0.015)

    def test_zero_branch_lengths_copy_parent(self):
        tree = Tree.from_newick("(a:0.0,b:0.0,c:0.0);")
        rng = np.random.default_rng(1)
        sim = simulate_alignment(tree, jc69(), 500, rng)
        a = sim.alignment
        np.testing.assert_array_equal(a.data[0], a.data[1])
        np.testing.assert_array_equal(a.data[0], a.data[2])

    def test_short_branches_high_identity(self):
        tree = Tree.from_newick("(a:0.01,b:0.01,c:0.01);")
        rng = np.random.default_rng(2)
        sim = simulate_alignment(tree, jc69(), 5000, rng)
        a = sim.alignment
        identity = (a.data[0] == a.data[1]).mean()
        assert identity > 0.95

    def test_gamma_rates_create_rate_variation(self):
        """Low-alpha Gamma produces more invariant + more saturated sites."""
        tree = Tree.from_newick("(a:0.5,b:0.5,c:0.5,d:0.5);")
        model = jc69()
        rng1 = np.random.default_rng(3)
        sim_gamma = simulate_alignment(
            tree, model, 20_000, rng1, gamma=GammaRates(0.1, 4)
        )
        rng2 = np.random.default_rng(3)
        sim_flat = simulate_alignment(tree, model, 20_000, rng2, gamma=None)

        def frac_constant(sim):
            data = sim.alignment.data
            return (data == data[0]).all(axis=0).mean()

        assert frac_constant(sim_gamma) > frac_constant(sim_flat) + 0.05

    def test_likelihood_prefers_true_alpha(self):
        """The engine's lnL peaks near the generating alpha."""
        from repro.core import LikelihoodEngine

        sim = simulate_dataset(n_taxa=8, n_sites=3000, seed=10, alpha=0.3)
        pat = sim.alignment.compress()
        model = gtr(
            np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
            np.array([0.3, 0.2, 0.2, 0.3]),
        )
        engine = LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(0.3, 4))
        lnl_true = engine.log_likelihood()
        engine.set_alpha(5.0)
        lnl_wrong = engine.log_likelihood()
        assert lnl_true > lnl_wrong

    def test_site_rate_metadata_matches_gamma(self):
        sim = simulate_dataset(n_taxa=5, n_sites=2000, seed=4, alpha=0.5)
        # rates come from the 4 discrete gamma categories
        unique = np.unique(sim.site_rates)
        assert unique.shape[0] == 4
        assert sim.site_rates.mean() == pytest.approx(1.0, abs=0.1)


class TestValidation:
    def test_model_alphabet_mismatch(self):
        from repro.phylo import poisson_protein
        from repro.phylo.states import DNA

        tree = Tree.from_newick("(a:0.1,b:0.1,c:0.1);")
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="states"):
            simulate_alignment(tree, poisson_protein(), 10, rng, states=DNA)

    def test_positive_sites_required(self):
        tree = Tree.from_newick("(a:0.1,b:0.1,c:0.1);")
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="positive"):
            simulate_alignment(tree, jc69(), 0, rng)

    def test_protein_simulation(self):
        from repro.phylo import poisson_protein

        tree = Tree.from_newick("(a:0.3,b:0.3,c:0.3);")
        rng = np.random.default_rng(0)
        sim = simulate_alignment(tree, poisson_protein(), 100, rng)
        assert sim.alignment.n_sites == 100
        assert sim.alignment.states.n_states == 20
