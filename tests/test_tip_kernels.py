"""Tests for the gather-based tip-case vector kernels and Table II."""

import numpy as np
import pytest

from repro.core import kernels as ref
from repro.core.vectorized import (
    BLOCK_DOUBLES,
    emit_newview_tip_tip,
    prepare_tip_consts,
    setup_buffers,
)
from repro.harness.table2 import TABLE2_CONFIGS, render_table2
from repro.mic.device import xeon_e5_device, xeon_phi_device
from repro.mic.isa import Op
from repro.phylo import GammaRates, gtr
from repro.phylo.states import DNA


@pytest.fixture(scope="module")
def tip_problem():
    rng = np.random.default_rng(8)
    n = 24
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    eigen = model.eigen()
    gamma = GammaRates(0.8, 4)
    tipv = ref.tip_eigen_table(eigen, DNA.tip_table())
    codes1 = rng.choice([1, 2, 4, 8, 15, 5], size=n).astype(np.int64)
    codes2 = rng.choice([1, 2, 4, 8, 15, 10], size=n).astype(np.int64)
    return eigen, gamma, tipv, codes1, codes2, n


@pytest.mark.parametrize("device_factory", [xeon_phi_device, xeon_e5_device])
class TestTipTipKernel:
    def test_matches_reference(self, device_factory, tip_problem):
        eigen, gamma, tipv, codes1, codes2, n = tip_problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, np.zeros((n, 4, 4)), np.zeros((n, 4, 4)))
        prepare_tip_consts(vm, bufs, eigen, gamma.rates, tipv, 0.2, 0.4)
        prog = emit_newview_tip_tip(vm.isa, bufs, codes1, codes2)
        vm.run(prog)
        got = vm.read_array(bufs.out, n * BLOCK_DOUBLES).reshape(n, 4, 4)
        lut1 = ref.tip_branch_lookup(
            ref.branch_matrices(eigen, gamma.rates, 0.2), tipv
        )
        lut2 = ref.tip_branch_lookup(
            ref.branch_matrices(eigen, gamma.rates, 0.4), tipv
        )
        expected, _ = ref.newview_tip_tip(
            eigen.u_inv, lut1, codes1, lut2, codes2
        )
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_uses_gathers(self, device_factory, tip_problem):
        eigen, gamma, tipv, codes1, codes2, n = tip_problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, np.zeros((n, 4, 4)), np.zeros((n, 4, 4)))
        prepare_tip_consts(vm, bufs, eigen, gamma.rates, tipv, 0.2, 0.4)
        prog = emit_newview_tip_tip(vm.isa, bufs, codes1, codes2)
        assert any(i.op is Op.VGATHER for i in prog.instructions)

    def test_requires_consts(self, device_factory, tip_problem):
        *_, codes1, codes2, n = tip_problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, np.zeros((n, 4, 4)), np.zeros((n, 4, 4)))
        with pytest.raises(ValueError, match="prepare_tip_consts"):
            emit_newview_tip_tip(vm.isa, bufs, codes1, codes2)

    def test_code_count_validated(self, device_factory, tip_problem):
        eigen, gamma, tipv, codes1, codes2, n = tip_problem
        vm = device_factory().make_vm()
        bufs = setup_buffers(vm, np.zeros((n, 4, 4)), np.zeros((n, 4, 4)))
        prepare_tip_consts(vm, bufs, eigen, gamma.rates, tipv, 0.2, 0.4)
        with pytest.raises(ValueError, match="site count"):
            emit_newview_tip_tip(vm.isa, bufs, codes1[:-1], codes2)


class TestTable2:
    def test_three_systems(self):
        assert len(TABLE2_CONFIGS) == 3

    def test_mic_requires_icc(self):
        """The paper's compiler constraint: icc on the MIC, gcc on CPUs."""
        by_system = {c.system: c for c in TABLE2_CONFIGS}
        assert by_system["Xeon Phi"].compiler.startswith("icc")
        assert by_system["Xeon E5-2680"].compiler.startswith("gcc")

    def test_render(self):
        text = render_table2()
        assert "Table II" in text
        assert "icc 13.1.3" in text
