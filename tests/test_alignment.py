"""Unit tests for alignment containers and pattern compression."""

import numpy as np
import pytest

from repro.phylo import Alignment, compress_patterns
from repro.phylo.states import DNA


def make(seqs: dict[str, str]) -> Alignment:
    return Alignment.from_sequences(seqs)


class TestAlignment:
    def test_basic_construction(self):
        aln = make({"a": "ACGT", "b": "AGGT"})
        assert aln.n_taxa == 2
        assert aln.n_sites == 4

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError, match="differing lengths"):
            make({"a": "ACGT", "b": "ACG"})

    def test_rejects_duplicate_taxa(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alignment(["a", "a"], np.ones((2, 3), dtype=np.uint32))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            make({})

    def test_sequence_roundtrip(self):
        aln = make({"a": "ACGT-N", "b": "TTTTTT"})
        assert aln.sequence("a") == "ACGT--"  # N decodes as gap-equivalent
        assert aln.sequence("b") == "TTTTTT"


class TestPatternCompression:
    def test_identical_columns_merge(self):
        aln = make({"a": "AAAC", "b": "GGGT"})
        pat = compress_patterns(aln)
        assert pat.n_patterns == 2
        assert pat.n_sites == 4
        np.testing.assert_array_equal(sorted(pat.weights), [1.0, 3.0])

    def test_first_appearance_order(self):
        aln = make({"a": "CAAC", "b": "TGGT"})
        pat = compress_patterns(aln)
        # first column (C/T) appears first
        assert DNA.decode(pat.data[:, 0]) == "CT"
        assert DNA.decode(pat.data[:, 1]) == "AG"

    def test_weights_sum_to_sites(self):
        rng = np.random.default_rng(0)
        data = rng.choice([1, 2, 4, 8], size=(4, 200)).astype(np.uint32)
        aln = Alignment(["a", "b", "c", "d"], data)
        pat = compress_patterns(aln)
        assert pat.weights.sum() == 200
        assert pat.n_patterns <= 200

    def test_site_to_pattern_mapping(self):
        aln = make({"a": "ACAC", "b": "GTGT"})
        pat = compress_patterns(aln)
        assert pat.n_patterns == 2
        # expansion reproduces the per-site values
        per_pattern = np.array([10.0, 20.0])
        expanded = pat.expand(per_pattern)
        np.testing.assert_array_equal(expanded, [10.0, 20.0, 10.0, 20.0])

    def test_all_unique_columns(self):
        aln = make({"a": "ACGT", "b": "CGTA", "c": "GTAC"})
        pat = compress_patterns(aln)
        assert pat.n_patterns == 4
        np.testing.assert_array_equal(pat.weights, np.ones(4))

    def test_row_lookup(self):
        aln = make({"x": "AAC", "y": "GGT"})
        pat = compress_patterns(aln)
        np.testing.assert_array_equal(pat.row("x"), DNA.encode("AC"))

    def test_compress_method_equivalent(self):
        aln = make({"a": "AAAC", "b": "GGGT"})
        assert aln.compress().n_patterns == compress_patterns(aln).n_patterns

    def test_likelihood_invariant_under_compression(self):
        """Pattern compression must not change the likelihood."""
        from repro.core import LikelihoodEngine
        from repro.phylo import GammaRates, gtr, simulate_dataset

        sim = simulate_dataset(n_taxa=5, n_sites=60, seed=3)
        pat = sim.alignment.compress()
        model = gtr()
        eng = LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(1.0, 4))
        lnl_compressed = eng.log_likelihood()

        # uncompressed: weights all one
        from repro.phylo.alignment import PatternAlignment

        flat = PatternAlignment(
            taxa=list(sim.alignment.taxa),
            data=sim.alignment.data.copy(),
            weights=np.ones(sim.alignment.n_sites),
            site_to_pattern=np.arange(sim.alignment.n_sites),
            states=sim.alignment.states,
        )
        eng2 = LikelihoodEngine(flat, sim.tree.copy(), model, GammaRates(1.0, 4))
        assert eng2.log_likelihood() == pytest.approx(lnl_compressed, abs=1e-8)
