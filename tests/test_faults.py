"""Fault injection, retry/backoff, crash-safe checkpointing, recovery.

Four layers under test:

* the deterministic :class:`~repro.faults.FaultPlan` schedule and the
  :class:`~repro.faults.retry.RetryPolicy` backoff math,
* the instrumented call sites — offload retry loop, AllReduce
  timeout/retry, rank-death degrade-or-abort,
* the crash-safe checkpoint machinery (atomic writes, rotation,
  kill-mid-write, corrupt-snapshot handling — including a hypothesis
  sweep: *any* single-byte corruption must surface as ``ValueError``),
* end-to-end recovery: a search killed by an injected crash resumes
  from its checkpoint and reaches the *identical* final topology and
  likelihood as an uninterrupted run (the acceptance criterion).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LikelihoodEngine
from repro.faults import (
    AllReduceTimeout,
    DeviceReset,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    OffloadGaveUp,
    RankFailure,
    RetryPolicy,
    TransferTimeout,
    available_plans,
    make_plan,
    plan_from_json,
)
from repro.mic.offload import OffloadRuntime
from repro.parallel import DistributedEngine, SimMPI
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.search import SearchConfig, ml_search
from repro.search.checkpoint import (
    Checkpoint,
    CheckpointWriter,
    load_checkpoint,
    load_latest_checkpoint,
    rotation_slots,
    save_checkpoint,
)
from repro.util import atomic_write_text


@pytest.fixture(scope="module")
def problem():
    sim = simulate_dataset(n_taxa=8, n_sites=300, seed=55)
    pat = sim.alignment.compress()
    return sim, pat


def small_config(**kw):
    return SearchConfig(radii=(2, 3), max_spr_rounds=4, seed=55, **kw)


# ----------------------------------------------------------------------
# FaultPlan / FaultSpec
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma-ray")

    def test_inert_spec_rejected(self):
        with pytest.raises(ValueError, match="inert"):
            FaultSpec(kind="transfer-timeout")

    def test_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="transfer-timeout", probability=1.5)

    def test_scheduled_fires_exact_calls(self):
        plan = FaultPlan(
            (FaultSpec(kind="transfer-timeout", at_calls=(1, 3)),), seed=0
        )
        hits = [
            plan.consult("transfer-timeout") is not None for _ in range(6)
        ]
        assert hits == [False, True, False, True, False, False]

    def test_stochastic_is_deterministic_per_seed(self):
        def draw(seed):
            plan = FaultPlan(
                (FaultSpec(kind="transfer-timeout", probability=0.3),),
                seed=seed,
            )
            return [
                plan.consult("transfer-timeout") is not None
                for _ in range(50)
            ]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)  # astronomically unlikely to collide

    def test_max_fires_budget(self):
        plan = FaultPlan(
            (
                FaultSpec(
                    kind="transfer-timeout", probability=1.0, max_fires=2
                ),
            ),
            seed=0,
        )
        fired = sum(
            plan.consult("transfer-timeout") is not None for _ in range(10)
        )
        assert fired == 2

    def test_step_matching_and_once_only(self):
        plan = FaultPlan((FaultSpec(kind="crash-at-step", step=4),), seed=0)
        assert not plan.crash_at_step(3)
        assert plan.crash_at_step(4)
        # a crash spec fires once: the restarted process passes step 4
        assert not plan.crash_at_step(4)
        assert plan.summary() == {"crash-at-step": 1}

    def test_rank_death_names_victim(self):
        plan = FaultPlan(
            (FaultSpec(kind="rank-death", at_calls=(0,), rank=2),), seed=0
        )
        assert plan.rank_death(4) == 2
        assert plan.rank_death(4) is None

    def test_event_log(self):
        plan = FaultPlan(
            (FaultSpec(kind="crash-in-write", at_calls=(0,)),), seed=0
        )
        plan.crash_in_write("ck.json")
        (event,) = plan.events
        assert event.kind == "crash-in-write"
        assert event.detail["target"] == "ck.json"
        assert plan.n_fired == 1
        assert plan.consults("crash-in-write") == 1


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            base_delay_s=1e-4, multiplier=2.0, max_delay_s=4e-4, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_s(a, rng) for a in (1, 2, 3, 4, 5)]
        assert delays == [1e-4, 2e-4, 4e-4, 4e-4, 4e-4]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=1e-4, jitter=0.25)
        rng = np.random.default_rng(1)
        for _ in range(200):
            d = policy.backoff_s(1, rng)
            assert 0.75e-4 <= d <= 1.25e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestNamedPlans:
    def test_registry_round_trip(self):
        names = [info.name for info in available_plans()]
        assert "crash-midsearch" in names and "flaky-pcie" in names
        plan = make_plan("crash-midsearch", seed=3)
        assert plan.name == "crash-midsearch"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            make_plan("nonexistent")

    def test_plan_from_json_dict(self):
        plan = plan_from_json(
            {
                "seed": 7,
                "specs": [
                    {"kind": "transfer-timeout", "probability": 0.05},
                    {"kind": "crash-at-step", "step": 2},
                ],
            }
        )
        assert len(plan.specs) == 2 and plan.seed == 7

    def test_plan_from_json_bad_spec(self):
        with pytest.raises(ValueError, match="bad spec #0"):
            plan_from_json({"specs": [{"kind": "not-a-kind", "step": 1}]})


# ----------------------------------------------------------------------
# Offload retry loop
# ----------------------------------------------------------------------
class TestOffloadRetry:
    def test_no_plan_cost_matches_plain(self):
        plain = OffloadRuntime()
        faulty = OffloadRuntime(fault_plan=FaultPlan((), seed=0))
        a = plain.invoke(1e-3, bytes_to_card=1e6, bytes_from_card=1e5)
        b = faulty.invoke(1e-3, bytes_to_card=1e6, bytes_from_card=1e5)
        assert a == b

    def test_retries_then_succeeds(self):
        plan = FaultPlan(
            (FaultSpec(kind="transfer-timeout", at_calls=(0, 1)),), seed=0
        )
        rt = OffloadRuntime(fault_plan=plan)
        baseline = OffloadRuntime().invoke(1e-3)
        t = rt.invoke(1e-3)
        assert rt.retries == 2 and rt.giveups == 0
        # the successful attempt costs the fault-free price, plus waste
        assert t == pytest.approx(
            baseline + rt.seconds_in_faults + rt.seconds_in_backoff
        )
        assert rt.seconds_in_faults == pytest.approx(2 * rt.timeout_s)

    def test_gives_up_after_budget(self):
        plan = FaultPlan(
            (FaultSpec(kind="transfer-timeout", probability=1.0),), seed=0
        )
        rt = OffloadRuntime(fault_plan=plan, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(OffloadGaveUp, match="3 attempts"):
            rt.invoke(1e-3)
        assert rt.giveups == 1 and rt.retries == 2

    def test_device_reset_costs_more(self):
        plan = FaultPlan(
            (FaultSpec(kind="device-reset", at_calls=(0,)),), seed=0
        )
        rt = OffloadRuntime(fault_plan=plan)
        rt.invoke(1e-3)
        assert rt.device_resets == 1
        assert rt.seconds_in_faults == pytest.approx(rt.reset_cost_s)

    def test_overhead_includes_fault_time(self):
        plan = FaultPlan(
            (FaultSpec(kind="transfer-timeout", at_calls=(0,)),), seed=0
        )
        rt = OffloadRuntime(fault_plan=plan)
        rt.invoke(1e-3)
        assert rt.overhead_seconds >= rt.seconds_in_faults


# ----------------------------------------------------------------------
# Collectives: AllReduce timeout + rank death
# ----------------------------------------------------------------------
class TestCollectiveFaults:
    def test_allreduce_retries_then_succeeds(self):
        plan = FaultPlan(
            (FaultSpec(kind="allreduce-timeout", at_calls=(0,)),), seed=0
        )
        mpi = SimMPI(3, fault_plan=plan)
        out = mpi.allreduce_sum([np.ones(4)] * 3)
        np.testing.assert_allclose(out, 3 * np.ones(4))
        assert mpi.allreduce_retries == 1
        assert mpi.seconds_in_faults > 0

    def test_allreduce_timeout_exhaustion(self):
        plan = FaultPlan(
            (FaultSpec(kind="allreduce-timeout", probability=1.0),), seed=0
        )
        mpi = SimMPI(3, fault_plan=plan, retry=RetryPolicy(max_attempts=2))
        with pytest.raises(AllReduceTimeout):
            mpi.allreduce_sum([np.ones(2)] * 3)

    def test_rank_death_raises(self):
        plan = FaultPlan(
            (FaultSpec(kind="rank-death", at_calls=(0,), rank=1),), seed=0
        )
        mpi = SimMPI(4, fault_plan=plan)
        with pytest.raises(RankFailure) as info:
            mpi.allreduce_sum([np.ones(2)] * 4)
        assert info.value.rank == 1

    def test_degrade_still_matches_serial(self, problem):
        sim, pat = problem
        model, gamma = gtr(), GammaRates(0.7, 4)
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        plan = FaultPlan(
            (FaultSpec(kind="rank-death", at_calls=(1,), rank=1),), seed=0
        )
        dist = DistributedEngine(
            pat, sim.tree.copy(), model, gamma,
            n_ranks=3, mpi=SimMPI(3, fault_plan=plan),
            on_rank_failure="degrade",
        )
        first = dist.log_likelihood()  # collective 0: clean
        dist.tree.edge(dist.tree.edge_ids[0]).length *= 1.5
        serial.tree.edge(serial.tree.edge_ids[0]).length *= 1.5
        second = dist.log_likelihood()  # collective 1: rank 1 dies
        assert dist.dead_ranks == {1}
        assert dist.adoptions == {1: 0}
        assert dist.rank_failures == 1
        assert dist.recovery_seconds > 0
        assert second == pytest.approx(serial.log_likelihood(), abs=1e-8)
        assert np.isfinite(first)  # the pre-death collective was clean

    def test_abort_policy_propagates(self, problem):
        sim, pat = problem
        plan = FaultPlan(
            (FaultSpec(kind="rank-death", at_calls=(0,), rank=1),), seed=0
        )
        dist = DistributedEngine(
            pat, sim.tree.copy(), gtr(), GammaRates(0.7, 4),
            n_ranks=3, mpi=SimMPI(3, fault_plan=plan),
            on_rank_failure="abort",
        )
        with pytest.raises(RankFailure):
            dist.log_likelihood()

    def test_bad_policy_rejected(self, problem):
        sim, pat = problem
        with pytest.raises(ValueError, match="on_rank_failure"):
            DistributedEngine(
                pat, sim.tree.copy(), gtr(), GammaRates(0.7, 4),
                n_ranks=2, on_rank_failure="panic",
            )


# ----------------------------------------------------------------------
# Atomic writes + checkpoint crash safety
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_basic_write_and_overwrite(self, tmp_path):
        p = tmp_path / "f.txt"
        atomic_write_text(p, "one")
        atomic_write_text(p, "two")
        assert p.read_text() == "two"
        assert list(tmp_path.iterdir()) == [p]  # no tmp litter

    def test_failed_write_leaves_original(self, tmp_path):
        p = tmp_path / "f.txt"
        p.write_text("original")

        def boom(tmp):
            raise RuntimeError("killed")

        with pytest.raises(RuntimeError):
            atomic_write_text(p, "replacement", pre_replace_hook=boom)
        assert p.read_text() == "original"
        assert list(tmp_path.iterdir()) == [p]  # tmp cleaned up


class TestCheckpointCorruption:
    def test_truncated_json(self):
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            Checkpoint.from_json('{"format_version": 2, "newick": "((a')

    def test_non_object(self):
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            Checkpoint.from_json("[1, 2, 3]")

    def test_missing_field(self):
        doc = json.dumps({"format_version": 2, "newick": "(a,b);"})
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            Checkpoint.from_json(doc)

    def test_load_checkpoint_names_path(self, tmp_path):
        p = tmp_path / "ck.json"
        p.write_text("not json at all")
        with pytest.raises(ValueError, match=str(p)):
            load_checkpoint(p)
        with pytest.raises(ValueError, match="cannot read"):
            load_checkpoint(tmp_path / "missing.json")

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_single_byte_corruption_is_valueerror(
        self, data, problem, tmp_path_factory
    ):
        """Flip/overwrite one byte anywhere: always ValueError, never a
        raw KeyError/JSONDecodeError (or a silent success with the same
        payload)."""
        sim, pat = problem
        engine = LikelihoodEngine(
            pat, sim.tree.copy(), gtr(), GammaRates(0.7, 4)
        )
        path = tmp_path_factory.mktemp("hyp") / "ck.json"
        save_checkpoint(engine, path, lnl=-1.0, stage="spr", step=3)
        raw = bytearray(path.read_bytes())
        pos = data.draw(st.integers(0, len(raw) - 1), label="position")
        new_byte = data.draw(st.integers(0, 255), label="byte")
        old = raw[pos]
        raw[pos] = new_byte
        path.write_bytes(bytes(raw))
        try:
            ckpt = load_checkpoint(path)
        except ValueError:
            pass  # the required failure mode
        else:
            # corruption may happen to stay parseable (e.g. digit swap
            # or same byte): the loader must still return a Checkpoint
            assert isinstance(ckpt, Checkpoint)
            if new_byte == old:
                assert ckpt.step == 3


class TestRotationAndKillMidWrite:
    def make_engine(self, problem):
        sim, pat = problem
        return LikelihoodEngine(
            pat, sim.tree.copy(), gtr(), GammaRates(0.7, 4)
        )

    def test_rotation_keeps_last_k(self, problem, tmp_path):
        engine = self.make_engine(problem)
        path = tmp_path / "ck.json"
        writer = CheckpointWriter(path, every=1, keep=3)
        for step in range(5):
            writer.write(engine, lnl=-float(step), stage="spr", step=step)
        slots = rotation_slots(path, keep=3)
        assert [s.exists() for s in slots] == [True, True, True]
        assert not (tmp_path / "ck.json.3").exists()
        steps = [load_checkpoint(s).step for s in slots]
        assert steps == [4, 3, 2]  # newest first

    def test_maybe_write_period(self, problem, tmp_path):
        engine = self.make_engine(problem)
        writer = CheckpointWriter(tmp_path / "ck.json", every=2)
        assert writer.maybe_write(engine, None, "spr", 1) is None
        assert writer.maybe_write(engine, None, "spr", 2) is not None
        disabled = CheckpointWriter(tmp_path / "off.json", every=0)
        assert disabled.maybe_write(engine, None, "spr", 2) is None

    def test_kill_mid_write_leaves_previous_slot_loadable(
        self, problem, tmp_path
    ):
        """The ISSUE's crash-safety test: a process killed between fsync
        and rename never corrupts the rotation."""
        engine = self.make_engine(problem)
        path = tmp_path / "ck.json"
        plan = FaultPlan(
            (FaultSpec(kind="crash-in-write", at_calls=(1,)),), seed=0
        )
        writer = CheckpointWriter(path, every=1, keep=3, fault_plan=plan)
        writer.write(engine, lnl=-10.0, stage="spr", step=0)
        with pytest.raises(InjectedCrash) as info:
            writer.write(engine, lnl=-9.0, stage="spr", step=1)
        assert info.value.where == "checkpoint-write"
        # the kill happened after rotation: slot .1 holds step 0 and the
        # primary slot is gone — load_latest_checkpoint must fall back
        ckpt, slot = load_latest_checkpoint(path, keep=3)
        assert ckpt.step == 0 and ckpt.lnl == -10.0
        assert slot == tmp_path / "ck.json.1"
        # no half-written tmp file survives the crash
        assert not list(tmp_path.glob("*.tmp*"))

    def test_corrupt_primary_falls_back(self, problem, tmp_path):
        engine = self.make_engine(problem)
        path = tmp_path / "ck.json"
        writer = CheckpointWriter(path, every=1, keep=2)
        writer.write(engine, lnl=-10.0, stage="spr", step=0)
        writer.write(engine, lnl=-9.0, stage="spr", step=1)
        path.write_bytes(path.read_bytes()[:40])  # disk fault
        ckpt, slot = load_latest_checkpoint(path, keep=2)
        assert ckpt.step == 0
        assert slot.name == "ck.json.1"

    def test_no_loadable_slot_reports_all(self, tmp_path):
        with pytest.raises(ValueError, match="no loadable checkpoint"):
            load_latest_checkpoint(tmp_path / "ck.json")

    def test_writer_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointWriter(tmp_path / "x", every=-1)
        with pytest.raises(ValueError):
            CheckpointWriter(tmp_path / "x", keep=0)


# ----------------------------------------------------------------------
# End-to-end: crash -> resume -> identical result
# ----------------------------------------------------------------------
class TestCrashResumeParity:
    def test_resume_reaches_identical_result(self, problem, tmp_path):
        sim, pat = problem
        ck = tmp_path / "ck.json"
        baseline = ml_search(pat, config=small_config())

        plan = FaultPlan((FaultSpec(kind="crash-at-step", step=3),), seed=0)
        with pytest.raises(InjectedCrash):
            ml_search(
                pat,
                config=small_config(checkpoint_path=ck, checkpoint_every=1),
                fault_plan=plan,
            )
        ckpt, _ = load_latest_checkpoint(ck)
        assert ckpt.step < 3  # the killed step was never persisted
        resumed = ml_search(
            pat,
            config=small_config(checkpoint_path=ck, checkpoint_every=1),
            resume_from=ckpt,
            fault_plan=plan,  # same machine lifetime: crash spec is spent
        )
        assert resumed.lnl == pytest.approx(baseline.lnl, abs=1e-8)
        assert resumed.tree.to_newick(precision=10) == baseline.tree.to_newick(
            precision=10
        )
        # the resumed trajectory *continues* (threads lnl/stage through)
        label, lnl0 = resumed.lnl_trajectory[0]
        assert label.startswith("resume:")
        assert lnl0 == ckpt.lnl
        stages = [s for s, _ in resumed.lnl_trajectory]
        assert "start" not in stages  # completed stages are skipped

    def test_fault_abort_writes_emergency_checkpoint(self, problem, tmp_path):
        sim, pat = problem
        ck = tmp_path / "ck.json"
        # rank-death isn't possible here, but OffloadGaveUp-style faults
        # escape the driver via the FaultError branch; simulate one by
        # raising AllReduceTimeout from the crash hook's sibling path:
        # easiest realistic route is a dying SPR via monkeypatched plan.
        plan = FaultPlan((FaultSpec(kind="crash-at-step", step=2),), seed=0)
        with pytest.raises(InjectedCrash):
            ml_search(
                pat,
                config=small_config(checkpoint_path=ck, checkpoint_every=5),
                fault_plan=plan,
            )
        # periodic writes only fire on step%5==0, yet step 0 landed
        ckpt, _ = load_latest_checkpoint(ck)
        assert ckpt.stage == "start"

    def test_runner_survives_and_verifies(self, problem):
        _, pat = problem
        from repro.faults.runner import run_search_with_faults

        plan = make_plan("double-crash", seed=55)
        report = run_search_with_faults(
            pat, plan, small_config(), max_restarts=4, verify=True
        )
        assert report.survived
        assert report.crashes == 2 and report.restarts == 2
        assert report.fault_summary == {"crash-at-step": 2}
        assert report.lnl_delta == pytest.approx(0.0, abs=1e-8)
        assert report.topology_match and report.verified

    def test_runner_gives_up_when_budget_exhausted(self, problem):
        _, pat = problem
        from repro.faults.runner import run_search_with_faults

        plan = FaultPlan(
            (
                FaultSpec(
                    kind="crash-at-step", step=2, max_fires=10
                ),
            ),
            seed=0,
        )
        report = run_search_with_faults(
            pat, plan, small_config(), max_restarts=2
        )
        assert not report.survived
        assert report.crashes == 3  # initial process + 2 restarts
