"""Tests for the trace-driven ExaML run model (Table III machinery)."""

import pytest

from repro.parallel import (
    ExaMLModel,
    examl_cpu,
    examl_mic_flat,
    examl_mic_hybrid,
    raxml_light_pthreads,
)
from repro.perf import (
    DEFAULT_TRACE,
    XEON_E5_2680_2S,
    XEON_PHI_5110P_1S,
    XEON_PHI_5110P_2S,
)


def cpu_model():
    return ExaMLModel(XEON_E5_2680_2S, examl_cpu(XEON_E5_2680_2S))


def mic_model(cards=1):
    spec = XEON_PHI_5110P_1S if cards == 1 else XEON_PHI_5110P_2S
    return ExaMLModel(spec, examl_mic_hybrid(n_cards=cards))


class TestPredictions:
    def test_total_is_sum_of_components(self):
        p = mic_model().predict(DEFAULT_TRACE, 100_000)
        assert p.total_s == pytest.approx(
            p.compute_s + p.sync_s + p.serial_s + p.ramp_s + p.comm_s
        )
        assert p.total_s == pytest.approx(sum(p.per_kernel_s.values()))

    def test_time_monotone_in_sites(self):
        m = mic_model()
        times = [m.predict(DEFAULT_TRACE, s).total_s for s in (1e4, 1e5, 1e6)]
        assert times[0] < times[1] < times[2]

    def test_invalid_sites_rejected(self):
        with pytest.raises(ValueError):
            mic_model().predict(DEFAULT_TRACE, 0)


class TestTable3Shape:
    """The paper's headline behaviours, asserted as invariants."""

    def test_cpu_wins_small_alignments(self):
        cpu = cpu_model().predict(DEFAULT_TRACE, 10_000)
        mic = mic_model().predict(DEFAULT_TRACE, 10_000)
        assert mic.total_s > 2 * cpu.total_s  # paper: 3.1x slower

    def test_crossover_near_100k(self):
        cpu = cpu_model()
        mic = mic_model()
        ratio_50k = (
            cpu.predict(DEFAULT_TRACE, 50_000).total_s
            / mic.predict(DEFAULT_TRACE, 50_000).total_s
        )
        ratio_250k = (
            cpu.predict(DEFAULT_TRACE, 250_000).total_s
            / mic.predict(DEFAULT_TRACE, 250_000).total_s
        )
        assert ratio_50k < 1.0 < ratio_250k

    def test_speedup_stabilises_around_two(self):
        cpu = cpu_model()
        mic = mic_model()
        s2m = (
            cpu.predict(DEFAULT_TRACE, 2_000_000).total_s
            / mic.predict(DEFAULT_TRACE, 2_000_000).total_s
        )
        s4m = (
            cpu.predict(DEFAULT_TRACE, 4_000_000).total_s
            / mic.predict(DEFAULT_TRACE, 4_000_000).total_s
        )
        assert 1.8 < s2m < 2.2
        assert 1.8 < s4m < 2.2
        assert abs(s4m - s2m) < 0.15  # stabilised

    def test_speedup_monotone_in_size(self):
        cpu = cpu_model()
        mic = mic_model()
        sizes = (1e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2e6, 4e6)
        ratios = [
            cpu.predict(DEFAULT_TRACE, int(s)).total_s
            / mic.predict(DEFAULT_TRACE, int(s)).total_s
            for s in sizes
        ]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_two_cards_scale_toward_1_8(self):
        """Figure 4: 2-MIC speedup grows with size to ~1.8-2.0x."""
        one = mic_model(1)
        two = mic_model(2)
        small = (
            one.predict(DEFAULT_TRACE, 10_000).total_s
            / two.predict(DEFAULT_TRACE, 10_000).total_s
        )
        big = (
            one.predict(DEFAULT_TRACE, 4_000_000).total_s
            / two.predict(DEFAULT_TRACE, 4_000_000).total_s
        )
        assert small < 1.1  # two cards lose or tie on tiny data
        assert 1.7 < big < 2.0  # paper: 1.84, sub-linear

    def test_mic_sync_dominates_small_sizes(self):
        p = mic_model().predict(DEFAULT_TRACE, 10_000)
        overhead = p.sync_s + p.serial_s + p.comm_s
        assert overhead > p.compute_s

    def test_mic_compute_dominates_large_sizes(self):
        p = mic_model().predict(DEFAULT_TRACE, 4_000_000)
        overhead = p.sync_s + p.serial_s + p.comm_s + p.ramp_s
        assert p.compute_s > 5 * overhead


class TestConfigurations:
    def test_flat_mpi_substantially_slower(self):
        """Sec. V-D: 120 flat ranks on one card lose to 2x118 hybrid."""
        flat = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_flat(120))
        hybrid = mic_model()
        t_flat = flat.predict(DEFAULT_TRACE, 100_000).total_s
        t_hybrid = hybrid.predict(DEFAULT_TRACE, 100_000).total_s
        assert t_flat > 2 * t_hybrid

    def test_forkjoin_slower_on_mic(self):
        """Sec. V-D: 2-syncs-per-kernel fork-join loses on the MIC."""
        fj = ExaMLModel(
            XEON_PHI_5110P_1S, raxml_light_pthreads(XEON_PHI_5110P_1S, on_mic=True)
        )
        t_fj = fj.predict(DEFAULT_TRACE, 100_000).total_s
        t_hybrid = mic_model().predict(DEFAULT_TRACE, 100_000).total_s
        assert t_fj > t_hybrid

    def test_effective_cores_capped(self):
        cfg = examl_mic_hybrid(n_cards=1)
        assert cfg.effective_cores(XEON_PHI_5110P_1S) == 60
        cpu_cfg = examl_cpu(XEON_E5_2680_2S)
        assert cpu_cfg.effective_cores(XEON_E5_2680_2S) == 16

    def test_partitioned_degradation_monotone(self):
        """Sec. V-A: runtime grows with partition count on the MIC."""
        m = mic_model()
        times = [
            m.predict_partitioned(DEFAULT_TRACE, 500_000, p).total_s
            for p in (1, 4, 16, 64)
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_partitioned_one_partition_matches_plain(self):
        m = mic_model()
        plain = m.predict(DEFAULT_TRACE, 250_000).total_s
        one = m.predict_partitioned(DEFAULT_TRACE, 250_000, 1).total_s
        assert one == pytest.approx(plain, rel=0.02)

    def test_partitioned_validation(self):
        m = mic_model()
        with pytest.raises(ValueError):
            m.predict_partitioned(DEFAULT_TRACE, 100, 0)
        with pytest.raises(ValueError):
            m.predict_partitioned(DEFAULT_TRACE, 100, 200)

    def test_memory_fit(self):
        """4000K sites x 15 taxa fills the 8 GB card (paper Sec. VI-B2)."""
        m = mic_model()
        assert m.fits_in_memory(4_000_000, 15)
        assert not m.fits_in_memory(40_000_000, 15)
        # memory use is within 2x of the card capacity at 4M sites
        cla = m.cla_memory_bytes(4_000_000, 15)
        assert 0.4e9 < cla < 8e9
