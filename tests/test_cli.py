"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.phylo import Alignment, Tree, simulate_dataset, write_fasta, write_phylip


@pytest.fixture(scope="module")
def io_case(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    sim = simulate_dataset(n_taxa=7, n_sites=300, seed=31)
    aln_path = tmp / "aln.phy"
    write_phylip(sim.alignment, aln_path)
    # reference / query split for placement
    q = sim.alignment.taxa[2]
    ref_tree = sim.tree.copy()
    leaf = ref_tree.node_by_name(q)
    pend = ref_tree.incident_edges(leaf)[0]
    ref_tree.prune_subtree(pend, subtree_root=leaf)
    ref_tree.remove_node(leaf)
    ref = Alignment.from_sequences(
        {t: sim.alignment.sequence(t) for t in sim.alignment.taxa if t != q}
    )
    ref_path = tmp / "ref.phy"
    write_phylip(ref, ref_path)
    tree_path = tmp / "ref.nwk"
    tree_path.write_text(ref_tree.to_newick())
    q_path = tmp / "q.fasta"
    write_fasta(Alignment.from_sequences({q: sim.alignment.sequence(q)}), q_path)
    return tmp, sim, aln_path, ref_path, tree_path, q_path, q


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("simulate", "search", "place", "kernels", "predict"):
            args = {
                "simulate": ["simulate", "--out", "x.phy"],
                "search": ["search", "x.phy"],
                "place": [
                    "place", "--reference", "r", "--tree", "t", "--queries", "q",
                ],
                "kernels": ["kernels"],
                "predict": ["predict", "--sites", "1000"],
            }[cmd]
            assert parser.parse_args(args).command == cmd


class TestSimulate(object):
    def test_writes_phylip_and_tree(self, tmp_path):
        out = tmp_path / "sim.phy"
        tree_out = tmp_path / "sim.nwk"
        rc = main([
            "simulate", "--taxa", "6", "--sites", "100", "--seed", "3",
            "--out", str(out), "--tree-out", str(tree_out),
        ])
        assert rc == 0
        from repro.phylo import read_phylip

        aln = read_phylip(out)
        assert aln.n_taxa == 6 and aln.n_sites == 100
        tree = Tree.from_newick(tree_out.read_text())
        assert tree.n_leaves == 6


class TestSearch:
    def test_search_writes_tree(self, io_case, tmp_path, capsys):
        _, sim, aln_path, *_ = io_case
        out = tmp_path / "ml.nwk"
        rc = main([
            "search", str(aln_path), "--out", str(out),
            "--radius", "4", "--no-rates",
        ])
        assert rc == 0
        tree = Tree.from_newick(out.read_text())
        assert sorted(tree.leaf_names()) == sorted(sim.alignment.taxa)
        captured = capsys.readouterr().out
        assert "final lnL" in captured


class TestPlace:
    def test_place_writes_jplace(self, io_case, tmp_path, capsys):
        _, sim, _, ref_path, tree_path, q_path, q = io_case
        out = tmp_path / "out.jplace"
        rc = main([
            "place", "--reference", str(ref_path), "--tree", str(tree_path),
            "--queries", str(q_path), "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == 3
        assert doc["placements"][0]["n"] == [q]
        assert len(doc["placements"][0]["p"]) >= 1
        # edge annotations present in the tree string
        assert "{0}" in doc["tree"]
        # weight ratios of reported placements sum to ~1
        total = sum(row[2] for row in doc["placements"][0]["p"])
        assert total == pytest.approx(1.0, abs=1e-6)


class TestStats:
    def test_stats_prints_summary(self, io_case, capsys):
        _, _, aln_path, *_ = io_case
        rc = main(["stats", str(aln_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "patterns" in out
        assert "composition" in out


class TestNjStart:
    def test_search_with_nj_start(self, io_case, tmp_path, capsys):
        _, sim, aln_path, *_ = io_case
        out = tmp_path / "nj_ml.nwk"
        rc = main([
            "search", str(aln_path), "--out", str(out),
            "--radius", "3", "--no-rates", "--start", "nj",
        ])
        assert rc == 0
        assert "neighbor joining" in capsys.readouterr().out
        tree = Tree.from_newick(out.read_text())
        assert sorted(tree.leaf_names()) == sorted(sim.alignment.taxa)


class TestPredict:
    @pytest.mark.parametrize("system", ["cpu2630", "cpu2680", "mic1", "mic2"])
    def test_predict_reports(self, system, capsys):
        rc = main(["predict", "--sites", "100000", "--system", system])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup vs 2S E5-2680" in out
        assert "energy" in out


class TestKernels:
    def test_kernels_prints_figure3(self, capsys):
        rc = main(["kernels"])
        assert rc == 0
        assert "derivative_sum" in capsys.readouterr().out


class TestCheckpointFlags:
    def test_crash_resume_roundtrip(self, io_case, tmp_path, capsys):
        """The acceptance path: search dies at an injected crash step,
        resumes from its checkpoint, and matches an uninterrupted run."""
        _, sim, aln_path, *_ = io_case
        ck = tmp_path / "ck.json"
        base_out = tmp_path / "base.nwk"
        rc = main([
            "search", str(aln_path), "--radius", "3", "--seed", "9",
            "--out", str(base_out),
        ])
        assert rc == 0
        base_lnl = [
            line for line in capsys.readouterr().out.splitlines()
            if "final lnL" in line
        ][0]

        rc = main([
            "search", str(aln_path), "--radius", "3", "--seed", "9",
            "--checkpoint", str(ck), "--checkpoint-every", "1",
            "--fault-plan", "crash-midsearch", "--fault-seed", "9",
        ])
        out = capsys.readouterr().out
        assert rc == 3  # the injected-crash exit code
        assert "search died" in out and "--resume" in out
        assert ck.exists()

        resumed_out = tmp_path / "resumed.nwk"
        rc = main([
            "search", str(aln_path), "--radius", "3", "--seed", "9",
            "--resume", str(ck), "--out", str(resumed_out),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resuming from" in out
        resumed_lnl = [
            line for line in out.splitlines() if "final lnL" in line
        ][0]
        assert resumed_lnl == base_lnl
        assert resumed_out.read_text() == base_out.read_text()


class TestFaultsCommand:
    def test_list_plans(self, capsys):
        rc = main(["faults", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crash-midsearch" in out and "flaky-pcie" in out

    def test_requires_alignment(self, capsys):
        rc = main(["faults"])
        assert rc == 2
        assert "alignment" in capsys.readouterr().out

    def test_survival_run_with_verify(self, io_case, tmp_path, capsys):
        _, _, aln_path, *_ = io_case
        rc = main([
            "faults", str(aln_path), "--plan", "crash-midsearch",
            "--seed", "9", "--radius", "3",
            "--checkpoint", str(tmp_path / "ck.json"), "--verify",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "survived:      yes" in out
        assert "verify:        OK" in out
        assert "crash-at-step x1" in out


class TestParallelFlags:
    """PR 5: --workers/--exec on search and place, env-var defaults."""

    def test_parser_accepts_parallel_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["search", "x.phy", "--workers", "3", "--exec", "processes"]
        )
        assert args.workers == 3
        assert args.execution == "processes"
        args = parser.parse_args(
            ["place", "--reference", "r", "--tree", "t", "--queries", "q",
             "--workers", "2", "--exec", "threads"]
        )
        assert args.workers == 2
        assert args.execution == "threads"

    def test_parser_rejects_unknown_exec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "x.phy", "--exec", "cuda"])

    def test_env_vars_become_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        monkeypatch.setenv("REPRO_EXEC", "threads")
        args = build_parser().parse_args(["search", "x.phy"])
        assert args.workers == 5
        assert args.execution == "threads"

    def test_search_parallel_matches_serial(self, io_case, tmp_path, capsys):
        _, sim, aln_path, *_ = io_case
        out_a = tmp_path / "serial.nwk"
        out_b = tmp_path / "parallel.nwk"
        assert main([
            "search", str(aln_path), "--out", str(out_a),
            "--radius", "2", "--no-rates",
        ]) == 0
        lnl_a = next(
            line for line in capsys.readouterr().out.splitlines()
            if "final lnL" in line
        )
        assert main([
            "search", str(aln_path), "--out", str(out_b),
            "--radius", "2", "--no-rates",
            "--workers", "2", "--exec", "processes",
        ]) == 0
        captured = capsys.readouterr().out
        lnl_b = next(
            line for line in captured.splitlines() if "final lnL" in line
        )
        assert lnl_a == lnl_b  # printed likelihood identical digit-for-digit
        assert out_a.read_text() == out_b.read_text()
        assert "parallel: 2 workers" in captured
        assert "parallel regions:" in captured
        from repro.parallel import active_arena_segments

        assert active_arena_segments() == []

    def test_place_parallel_matches_serial(self, io_case, tmp_path, capsys):
        _, sim, _, ref_path, tree_path, q_path, q = io_case
        out_a = tmp_path / "a.jplace"
        out_b = tmp_path / "b.jplace"
        base = [
            "place", "--reference", str(ref_path), "--tree", str(tree_path),
            "--queries", str(q_path),
        ]
        assert main(base + ["--out", str(out_a)]) == 0
        assert main(
            base + ["--out", str(out_b), "--workers", "2", "--exec", "threads"]
        ) == 0
        assert (
            json.loads(out_a.read_text())["placements"]
            == json.loads(out_b.read_text())["placements"]
        )

    def test_backends_lists_parallel_defaults(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "parallel execution:" in out
        assert "simulated, threads, processes" in out
        assert "REPRO_WORKERS" in out
