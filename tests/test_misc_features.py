"""Tests for ASCII drawing, the offloaded engine, the report command,
and the vector-width sweep."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.harness.ablations import vector_width_sweep
from repro.mic import OffloadedEngine, OffloadRuntime
from repro.phylo import GammaRates, Tree, gtr, simulate_dataset
from repro.phylo.draw import ascii_tree
from repro.search import optimize_all_branches


class TestAsciiTree:
    def test_all_leaves_present(self):
        t = Tree.from_newick("((a:0.1,b:0.2):0.05,(c:0.1,d:0.1):0.05,e:0.3);")
        art = ascii_tree(t)
        for name in "abcde":
            assert name in art

    def test_lengths_shown_and_hidden(self):
        t = Tree.from_newick("(a:0.125,b:0.25,c:0.5);")
        assert "0.1250" in ascii_tree(t, show_lengths=True)
        assert "0.1250" not in ascii_tree(t, show_lengths=False)

    def test_support_annotation(self):
        t = Tree.from_newick("((a,b),(c,d));")
        support = {split: 0.87 for split in t.splits()}
        art = ascii_tree(t, support=support)
        assert "[87%]" in art

    def test_degenerate_trees(self):
        t2 = Tree.from_newick("(a:0.1,b:0.1);")
        art = ascii_tree(t2)
        assert "a" in art and "b" in art

    def test_one_line_per_leaf(self):
        t = Tree.from_newick("((a,b),(c,(d,e)),f);")
        art = ascii_tree(t, show_lengths=False)
        leaf_lines = [l for l in art.splitlines() if l.rstrip()[-1] in "abcdef"]
        assert len(leaf_lines) == 6


class TestOffloadedEngine:
    @pytest.fixture()
    def engines(self):
        sim = simulate_dataset(n_taxa=6, n_sites=120, seed=71)
        pat = sim.alignment.compress()
        native = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(1.0, 4))
        wrapped = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(1.0, 4))
        return native, OffloadedEngine(wrapped)

    def test_numerics_identical(self, engines):
        native, offloaded = engines
        assert offloaded.log_likelihood() == pytest.approx(
            native.log_likelihood(), abs=1e-10
        )

    def test_offload_cost_accrues_per_kernel_call(self, engines):
        _, offloaded = engines
        offloaded.log_likelihood()
        calls_after_first = offloaded.offloaded_calls
        assert calls_after_first == offloaded.counters.total_calls()
        assert offloaded.offload_seconds == pytest.approx(
            calls_after_first * offloaded.runtime.invocation_latency_s
        )

    def test_search_runs_through_offload(self, engines):
        _, offloaded = engines
        before = offloaded.offload_seconds
        optimize_all_branches(offloaded, passes=1)
        assert offloaded.offload_seconds > before

    def test_custom_runtime(self):
        sim = simulate_dataset(n_taxa=5, n_sites=60, seed=72)
        pat = sim.alignment.compress()
        engine = LikelihoodEngine(pat, sim.tree.copy(), gtr(), GammaRates(1.0, 4))
        off = OffloadedEngine(engine, runtime=OffloadRuntime(invocation_latency_s=1.0))
        off.log_likelihood()
        assert off.offload_seconds >= 1.0


class TestVectorWidthSweep:
    def test_wider_vectors_fewer_issue_cycles(self):
        sweep = vector_width_sweep(n_sites=64)
        assert sweep["mic512"] < sweep["avx256"]


class TestReportAll:
    def test_report_builds_and_contains_everything(self, tmp_path):
        from repro.harness.report_all import build_report, main

        report = build_report()
        for marker in (
            "Table I:",
            "Table II:",
            "Figure 2:",
            "Figure 3:",
            "Table III",
            "Figure 4:",
            "Figure 5:",
            "Roofline",
            "Ablations",
        ):
            assert marker in report
        out = tmp_path / "report.txt"
        rc = main(["--out", str(out)])
        assert rc == 0
        assert out.read_text().startswith("Reproduction report")


class TestJsonExport:
    def test_export_complete_and_serialisable(self, tmp_path):
        import json

        from repro.harness.export import export_results, main

        data = export_results()
        for key in (
            "table1", "table2", "figure3", "table3", "figure4", "figure5",
            "roofline", "ablations",
        ):
            assert key in data, key
        # round-trips through JSON
        text = json.dumps(data)
        assert json.loads(text)["figure3"][0]["kernel"] == "newview"
        out = tmp_path / "results.json"
        assert main(["--out", str(out)]) == 0
        assert out.exists()
