"""Tests for the placement server and the EPA output-correctness fixes.

Covers the ISSUE 9 acceptance criteria: jplace output invariants
(distal length bounded by the branch, LWRs normalised over the full
candidate set and monotone with log-likelihood), batched-vs-serial
bit-parity of :func:`place_queries`, warm :class:`PlacementSession`
reuse, backend-instance boundary validation, the ``/progress`` failure
marker, and the HTTP server end to end (cross-client batching equal to
the offline run, multi-tenant LRU eviction, ``/healthz`` flipping to
503 on an injected worker death).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.backends import get_backend, make_engine, resolve_backend_name
from repro.obs import server as obs_server
from repro.obs.metrics import sanitize_metric_component
from repro.phylo import Alignment, GammaRates, gtr, simulate_dataset
from repro.search.epa import PlacementSession, place_queries, to_jplace
from repro.serve import PlacementServer


@pytest.fixture(scope="module")
def epa_case():
    sim = simulate_dataset(n_taxa=8, n_sites=300, seed=77)
    aln = sim.alignment
    query = aln.taxa[3]
    ref_tree = sim.tree.copy()
    leaf = ref_tree.node_by_name(query)
    pend = ref_tree.incident_edges(leaf)[0]
    ref_tree.prune_subtree(pend, subtree_root=leaf)
    ref_tree.remove_node(leaf)
    ref_aln = Alignment.from_sequences(
        {t: aln.sequence(t) for t in aln.taxa if t != query}
    )
    return ref_aln, ref_tree, aln.sequence(query)


def _get(url, timeout=30):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def _post(url, body, timeout=120):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestJplaceInvariants:
    def test_distal_bounded_by_branch_length(self, epa_case):
        ref_aln, ref_tree, seq = epa_case
        results = place_queries(
            ref_aln, ref_tree, {"q": seq}, gtr(), GammaRates(1.0, 4),
            keep_best=1000,
        )
        lengths = {}
        from repro.search.epa import _edge_label

        for e in ref_tree.edges:
            lengths[_edge_label(ref_tree, e.id)] = e.length
        for p in results[0].placements:
            assert 0.0 <= p.distal_length <= lengths[p.edge_label]
            # midpoint attachment: distal is exactly half the branch
            assert p.distal_length == pytest.approx(
                0.5 * lengths[p.edge_label]
            )

    def test_jplace_rows_use_actual_distal(self, epa_case):
        ref_aln, ref_tree, seq = epa_case
        results = place_queries(
            ref_aln, ref_tree, {"q": seq}, gtr(), GammaRates(1.0, 4),
        )
        doc = to_jplace(results, ref_tree)
        fields = doc["fields"]
        i_distal = fields.index("distal_length")
        i_lwr = fields.index("like_weight_ratio")
        i_lnl = fields.index("likelihood")
        rows = doc["placements"][0]["p"]
        distals = {row[i_distal] for row in rows}
        assert len(distals) > 1  # not the old hardcoded 0.5 constant
        # monotone: LWR ordering matches log-likelihood ordering
        lnls = [row[i_lnl] for row in rows]
        lwrs = [row[i_lwr] for row in rows]
        assert lnls == sorted(lnls, reverse=True)
        assert lwrs == sorted(lwrs, reverse=True)

    def test_lwr_full_set_sums_to_one(self, epa_case):
        ref_aln, ref_tree, seq = epa_case
        full = place_queries(
            ref_aln, ref_tree, {"q": seq}, gtr(), GammaRates(1.0, 4),
            keep_best=1000,
        )[0].placements
        assert sum(p.weight_ratio for p in full) == pytest.approx(1.0)
        kept = place_queries(
            ref_aln, ref_tree, {"q": seq}, gtr(), GammaRates(1.0, 4),
            keep_best=4,
        )[0].placements
        assert len(kept) == 4
        assert sum(p.weight_ratio for p in kept) <= 1.0 + 1e-12
        # truncation is a pure slice of the full ranking
        for full_p, kept_p in zip(full, kept):
            assert kept_p == full_p


class TestBatchedParity:
    @pytest.mark.parametrize("backend", ["reference", "blocked"])
    def test_batched_equals_serial_bitwise(self, epa_case, backend):
        ref_aln, ref_tree, seq = epa_case
        queries = {f"q{i}": seq for i in range(3)}
        kwargs = dict(keep_best=1000, backend=backend)
        serial = place_queries(
            ref_aln, ref_tree, queries, gtr(), GammaRates(1.0, 4),
            batch_queries=False, **kwargs,
        )
        batched = place_queries(
            ref_aln, ref_tree, queries, gtr(), GammaRates(1.0, 4),
            batch_queries=True, **kwargs,
        )
        assert len(serial) == len(batched)
        for rs, rb in zip(serial, batched):
            assert rs.query == rb.query
            assert rs.placements == rb.placements  # bitwise: frozen floats

    def test_session_reuse_matches_one_shot(self, epa_case):
        ref_aln, ref_tree, seq = epa_case
        one_shot = place_queries(
            ref_aln, ref_tree, {"q": seq}, gtr(), GammaRates(1.0, 4),
        )
        with PlacementSession(
            ref_aln, ref_tree, gtr(), GammaRates(1.0, 4)
        ) as session:
            first = session.place({"q": seq})
            second = session.place({"q": seq})  # merged-pattern LRU hit
        assert first[0].placements == one_shot[0].placements
        assert second[0].placements == one_shot[0].placements
        assert session.queries_placed == 2


class TestBackendBoundary:
    def test_resolve_backend_name_round_trip(self):
        assert resolve_backend_name(get_backend("blocked")) == "blocked"
        assert resolve_backend_name(object()) is None

    def test_make_engine_resolves_registered_instance(self, epa_case):
        ref_aln, ref_tree, _ = epa_case
        engine = make_engine(
            ref_aln.compress(), ref_tree.copy(), gtr(), GammaRates(1.0, 4),
            backend=get_backend("reference"), workers=2,
            execution="processes",
        )
        try:
            assert engine.pool is not None
            assert engine.pool.backend_name == "reference"
        finally:
            engine.close()

    def test_unregistered_instance_clear_error(self, epa_case):
        ref_aln, ref_tree, seq = epa_case

        class NotRegistered:
            pass

        with pytest.raises(ValueError, match="backend \\*name\\*"):
            place_queries(
                ref_aln, ref_tree, {"q": seq}, gtr(), GammaRates(1.0, 4),
                backend=NotRegistered(), workers=2, execution="processes",
            )


class TestProgressFailureMarker:
    def test_failure_marks_progress_done(self, epa_case):
        ref_aln, ref_tree, seq = epa_case
        with obs_server.serve(port=0):
            with pytest.raises(ValueError):
                place_queries(
                    ref_aln, ref_tree, {"bad": "ACGT"}, gtr(),
                    GammaRates(1.0, 4),
                )
            snap = obs_server.progress().snapshot()
        assert snap["done"] is True
        assert snap["stage"] == "failed"
        assert "ValueError" in snap["info"]["error"]


class TestMetricSanitizer:
    def test_sanitize(self):
        assert sanitize_metric_component("my-tenant.1") == "my_tenant_1"
        assert sanitize_metric_component("9lives") == "_9lives"
        assert sanitize_metric_component("") == "_"


@pytest.fixture(scope="module")
def server_case(epa_case):
    ref_aln, ref_tree, seq = epa_case
    server = PlacementServer(
        port=0, batch_wait_s=0.05, max_tenants=2, allow_fault_injection=True
    )
    server.add_tenant("main", ref_aln, ref_tree)
    yield server, ref_aln, ref_tree, seq
    server.stop()


class TestPlacementServer:
    def test_concurrent_clients_match_offline(self, server_case):
        server, ref_aln, ref_tree, seq = server_case
        out = {}

        def client(i):
            out[i] = _post(
                f"{server.url}/tenants/main/place",
                {"queries": {f"c{i}": seq}, "keep_best": 5},
            )

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        offline = to_jplace(
            place_queries(
                ref_aln, ref_tree, {"c0": seq}, gtr(), GammaRates(1.0, 4),
                keep_best=5,
            ),
            ref_tree,
        )
        for i in range(4):
            code, doc = out[i]
            assert code == 200
            assert doc["tree"] == offline["tree"]
            assert doc["placements"][0]["p"] == (
                offline["placements"][0]["p"]
            )
        # the four concurrent single-query requests fused into batches
        code, body = _get(f"{server.url}/tenants")
        info = [
            t for t in json.loads(body)["tenants"] if t["name"] == "main"
        ][0]
        assert info["queries_placed"] >= 4
        assert info["batches_run"] < info["queries_placed"]

    def test_routes_and_documents(self, server_case):
        server, *_ = server_case
        code, body = _get(f"{server.url}/")
        assert code == 200 and "routes" in json.loads(body)
        code, body = _get(f"{server.url}/metrics")
        assert code == 200
        assert "repro_serve_main_queries_total" in body
        code, body = _get(f"{server.url}/progress")
        assert code == 200 and json.loads(body)["task"] in ("serve", "place")
        code, _ = _get(f"{server.url}/nope")
        assert code == 404

    def test_unknown_tenant_404(self, server_case):
        server, _, _, seq = server_case
        code, doc = _post(
            f"{server.url}/tenants/ghost/place", {"queries": {"q": seq}}
        )
        assert code == 404

    def test_bad_body_400(self, server_case):
        server, *_ = server_case
        code, doc = _post(f"{server.url}/tenants/main/place", {})
        assert code == 400

    def test_tenant_lru_eviction(self, server_case):
        server, ref_aln, ref_tree, _ = server_case
        newick = ref_tree.to_newick()
        aln = {t: ref_aln.sequence(t) for t in ref_aln.taxa}
        code, _ = _post(
            f"{server.url}/tenants/spare", {"tree": newick, "alignment": aln}
        )
        assert code == 201
        # cap is 2: registering a third evicts the least-recently-used
        code, _ = _post(
            f"{server.url}/tenants/third", {"tree": newick, "alignment": aln}
        )
        assert code == 201
        code, body = _get(f"{server.url}/tenants")
        names = {t["name"] for t in json.loads(body)["tenants"]}
        assert len(names) == 2 and "third" in names
        # restore "main" for the other tests (module-scoped fixture)
        code, _ = _post(
            f"{server.url}/tenants/main", {"tree": newick, "alignment": aln}
        )
        assert code == 201


class TestWorkerDeathHealthz:
    def test_healthz_flips_503_on_injected_death(self, epa_case):
        ref_aln, ref_tree, seq = epa_case
        with PlacementServer(port=0, allow_fault_injection=True) as server:
            server.add_tenant(
                "pooled", ref_aln, ref_tree, workers=2, execution="processes"
            )
            code, _ = _get(f"{server.url}/healthz")
            assert code == 200
            code, doc = _post(
                f"{server.url}/faults/kill-worker?tenant=pooled", {}
            )
            assert code == 200 and doc["dead"]
            code, body = _get(f"{server.url}/healthz")
            assert code == 503
            snap = json.loads(body)
            assert snap["status"] == "degraded"
            labelled = [
                p for p in snap["worker_pools"] if p.get("label") == "pooled"
            ]
            assert labelled and labelled[0]["dead"]
            # a degraded tenant still serves placements
            code, doc = _post(
                f"{server.url}/tenants/pooled/place",
                {"queries": {"after": seq}},
            )
            assert code == 200

    def test_fault_injection_gated(self, epa_case):
        ref_aln, ref_tree, _ = epa_case
        with PlacementServer(port=0) as server:
            server.add_tenant("t", ref_aln, ref_tree)
            code, doc = _post(
                f"{server.url}/faults/kill-worker?tenant=t", {}
            )
            assert code == 403
