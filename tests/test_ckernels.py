"""Compiled C backend tests.

Codegen: the source template validates its shape parameters and the
cache digest moves with everything that can change the object's bits.

Parity: the compiled backend must match the reference kernels to 1e-10
(scale counters exactly) on the kinds the shared registry parity suite
in ``test_backends.py`` does not already cover — the preorder/gradient
kinds and stacked ``newview_batch`` dispatch — and whole engines
(GTR+Gamma, CAT, +I, memsave) must agree on real data.

Shadow: ``ShadowBackend(primary=CompiledBackend())`` stays silent on the
honest backend and catches a planted perturbation.

Workers: ``ml_search`` and ``place_queries`` on ``compiled`` with
``workers=2`` are bit-identical (delta == 0.0) to serial ``compiled``.

Fallback: with a broken ``$CC`` the backend warns once and delegates to
``blocked``, producing correct results with no compiler at all.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.backends import (
    BackendMismatchError,
    BlockedBackend,
    ShadowBackend,
    make_engine,
)
from repro.core.ckernels import (
    CompiledBackend,
    CompilerUnavailable,
    probe_status,
    render_source,
    source_digest,
)
from repro.core.ckernels import backend as ck_backend
from repro.core.ckernels import build as ck_build
from repro.core.schedule import NewviewCall, dispatch_wave
from repro.core.traversal import KernelKind
from repro.phylo import CatRates, GammaRates, gtr, simulate_dataset

N_STATES = 4
N_CODES = 4
ATOL = 1e-10

HAVE_CC = probe_status().available


def _random_inputs(seed: int, p: int, c: int, rescaled: bool = False) -> dict:
    rng = np.random.default_rng(seed)
    tiny = 1e-140 if rescaled else 1.0
    return {
        "u_inv": rng.normal(size=(N_STATES, N_STATES)),
        "a1": rng.uniform(0.05, 1.0, size=(c, N_STATES, N_STATES)),
        "a2": rng.uniform(0.05, 1.0, size=(c, N_STATES, N_STATES)),
        "z1": rng.uniform(0.1, 1.0, size=(p, c, N_STATES)) * tiny,
        "z2": rng.uniform(0.1, 1.0, size=(p, c, N_STATES)) * tiny,
        "scale1": rng.integers(0, 3, size=p),
        "scale2": rng.integers(0, 3, size=p),
        "lookup1": rng.uniform(0.1, 1.0, size=(c, N_CODES, N_STATES)),
        "lookup2": rng.uniform(0.1, 1.0, size=(c, N_CODES, N_STATES)),
        "codes1": rng.integers(0, N_CODES, size=p),
        "codes2": rng.integers(0, N_CODES, size=p),
        "eigenvalues": np.concatenate(
            [[0.0], -rng.uniform(0.1, 2.0, size=N_STATES - 1)]
        ),
        "rates": rng.uniform(0.2, 3.0, size=c),
        "rate_weights": np.full(c, 1.0 / c),
        "pattern_weights": rng.integers(1, 5, size=p).astype(float),
    }


shape_strategy = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=97),
    st.sampled_from([1, 4]),
    st.booleans(),
)


class TestCodegen:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            render_source(1, 4)
        with pytest.raises(ValueError):
            render_source(4, 0)

    def test_source_parameterised_by_shape(self):
        s44 = render_source(4, 4)
        s41 = render_source(4, 1)
        s204 = render_source(20, 4)
        assert s44 != s41 != s204
        assert "#define NS 20" in s204

    def test_digest_covers_source_and_toolchain(self):
        src = render_source(4, 4)
        base = source_digest(src, "cc|-O3")
        assert base != source_digest(render_source(4, 1), "cc|-O3")
        assert base != source_digest(src, "cc|-O3|-march=native")
        assert base == source_digest(src, "cc|-O3")


class TestPreorderAndGradientParity:
    """Kinds the shared registry parity suite does not cover."""

    @settings(max_examples=15, deadline=None)
    @given(shape=shape_strategy)
    def test_preorder_kinds(self, shape):
        seed, p, c, rescaled = shape
        d = _random_inputs(seed, p, c, rescaled)
        backend = CompiledBackend()
        for method, args in [
            ("preorder_tip_tip",
             (d["u_inv"], d["lookup1"], d["codes1"], d["lookup2"],
              d["codes2"])),
            ("preorder_tip_inner",
             (d["u_inv"], d["lookup1"], d["codes1"], d["a2"], d["z2"],
              d["scale2"])),
            ("preorder_inner_inner",
             (d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
              d["scale1"], d["scale2"])),
        ]:
            ref_fn = getattr(kernels, method.replace("preorder", "newview"))
            z_ref, s_ref = ref_fn(*args)
            z, s = getattr(backend, method)(*args)
            np.testing.assert_allclose(z, z_ref, rtol=0.0, atol=ATOL)
            np.testing.assert_array_equal(s, s_ref)

    @settings(max_examples=15, deadline=None)
    @given(shape=shape_strategy, t=st.floats(min_value=1e-6, max_value=2.0))
    def test_derivative_site_terms(self, shape, t):
        seed, p, c, _ = shape
        d = _random_inputs(seed, p, c)
        sumbuf = d["z1"] * d["z2"]
        ref = kernels.derivative_site_terms(
            sumbuf, d["eigenvalues"], d["rates"], d["rate_weights"], t
        )
        got = CompiledBackend().derivative_site_terms(
            sumbuf, d["eigenvalues"], d["rates"], d["rate_weights"], t
        )
        for r, g in zip(ref, got):
            np.testing.assert_allclose(g, r, rtol=1e-10, atol=ATOL)

    @settings(max_examples=15, deadline=None)
    @given(shape=shape_strategy, t=st.floats(min_value=1e-6, max_value=2.0))
    def test_edge_gradient_fused(self, shape, t):
        seed, p, c, _ = shape
        d = _random_inputs(seed, p, c)
        args = (
            d["z1"], d["z2"], d["eigenvalues"], d["rates"],
            d["rate_weights"], t,
        )
        backend = CompiledBackend()
        terms_ref = kernels.edge_gradient_terms(*args)
        terms = backend.edge_gradient_terms(*args)
        for r, g in zip(terms_ref, terms):
            np.testing.assert_allclose(g, r, rtol=1e-10, atol=ATOL)
        grad_ref = kernels.edge_gradient(*args, d["pattern_weights"])
        grad = backend.edge_gradient(*args, d["pattern_weights"])
        for r, g in zip(grad_ref, grad):
            assert g == pytest.approx(r, rel=1e-10, abs=ATOL)

    @settings(max_examples=10, deadline=None)
    @given(shape=shape_strategy)
    def test_gradient_broadcast_tip_views(self, shape):
        """Tip sides arrive as (p, 1, k) broadcast views in real engines."""
        seed, p, _, _ = shape
        d = _random_inputs(seed, p, 4)
        z_tip = np.ascontiguousarray(d["z1"][:, :1, :])
        args = (
            z_tip, d["z2"], d["eigenvalues"], d["rates"],
            d["rate_weights"], 0.3, d["pattern_weights"],
        )
        ref = kernels.edge_gradient(*args)
        got = CompiledBackend().edge_gradient(*args)
        for r, g in zip(ref, got):
            assert g == pytest.approx(r, rel=1e-10, abs=ATOL)


class TestNewviewBatch:
    """Stacked wave dispatch matches per-op dispatch bit-for-bit."""

    def _calls(self, seed: int, p: int) -> list:
        d = _random_inputs(seed, p, 4)
        calls = []
        # several tip-tip ops sharing one (lut1, lut2) pair: with
        # N_CODES=4 the 16-entry pair table engages when p >= 16
        rng = np.random.default_rng(seed + 1)
        for _ in range(3):
            calls.append(NewviewCall(
                op=None, kind=KernelKind.NEWVIEW_TIP_TIP,
                args=(d["u_inv"], d["lookup1"],
                      rng.integers(0, N_CODES, size=p),
                      d["lookup2"], rng.integers(0, N_CODES, size=p)),
            ))
        calls.append(NewviewCall(
            op=None, kind=KernelKind.NEWVIEW_TIP_INNER,
            args=(d["u_inv"], d["lookup1"], d["codes1"], d["a2"], d["z2"],
                  d["scale2"]),
        ))
        calls.append(NewviewCall(
            op=None, kind=KernelKind.NEWVIEW_INNER_INNER,
            args=(d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
                  d["scale1"], d["scale2"]),
        ))
        return calls

    @pytest.mark.parametrize("p", [7, 64])
    def test_batch_equals_per_op(self, p):
        backend = CompiledBackend()
        batched = dispatch_wave(backend, self._calls(3, p), batch=True)
        per_op = dispatch_wave(backend, self._calls(3, p), batch=False)
        assert len(batched) == len(per_op) == 5
        for (zb, sb), (zo, so) in zip(batched, per_op):
            np.testing.assert_array_equal(zb, zo)  # bitwise
            np.testing.assert_array_equal(sb, so)

    def test_batch_matches_reference(self):
        compiled = dispatch_wave(CompiledBackend(), self._calls(9, 64))
        reference = [
            (kernels.newview_tip_tip(*c.args)
             if c.kind is KernelKind.NEWVIEW_TIP_TIP
             else kernels.newview_tip_inner(*c.args)
             if c.kind is KernelKind.NEWVIEW_TIP_INNER
             else kernels.newview_inner_inner(*c.args))
            for c in self._calls(9, 64)
        ]
        for (z, s), (z_ref, s_ref) in zip(compiled, reference):
            np.testing.assert_allclose(z, z_ref, rtol=0.0, atol=ATOL)
            np.testing.assert_array_equal(s, s_ref)


class TestEngineParity:
    @pytest.fixture(scope="class")
    def sim(self):
        return simulate_dataset(n_taxa=10, n_sites=400, seed=42)

    def _lnl(self, sim, backend, **kw):
        return make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            backend=backend, **kw,
        ).log_likelihood()

    def test_gamma(self, sim):
        ref = self._lnl(sim, "reference", rates=GammaRates(0.7))
        got = self._lnl(sim, "compiled", rates=GammaRates(0.7))
        assert got == pytest.approx(ref, abs=1e-9)

    def test_cat(self, sim):
        patterns = sim.alignment.compress()
        cat = CatRates.from_gamma(
            0.7, patterns.n_patterns, 4, np.random.default_rng(0),
            weights=patterns.weights,
        )
        ref = self._lnl(sim, "reference", cat=cat)
        got = self._lnl(sim, "compiled", cat=cat)
        assert got == pytest.approx(ref, abs=1e-9)

    def test_invariant(self, sim):
        ref = self._lnl(sim, "reference", rates=GammaRates(0.7), p_inv=0.1)
        got = self._lnl(sim, "compiled", rates=GammaRates(0.7), p_inv=0.1)
        assert got == pytest.approx(ref, abs=1e-9)

    def test_memsave(self, sim):
        ref = self._lnl(sim, "reference", rates=GammaRates(0.7))
        got = self._lnl(sim, "compiled", rates=GammaRates(0.7),
                        max_resident=4)
        assert got == pytest.approx(ref, abs=1e-9)

    def test_gradients_all_branches(self, sim):
        def grads(backend):
            eng = make_engine(
                sim.alignment.compress(), sim.tree.copy(), gtr(),
                GammaRates(0.7), backend=backend,
            )
            return eng.all_branch_gradients()

        ref = grads("reference")
        got = grads("compiled")
        assert set(ref) == set(got)
        for eid in ref:
            np.testing.assert_allclose(
                np.array(got[eid]), np.array(ref[eid]),
                rtol=1e-9, atol=1e-9,
            )


class _PerturbedCompiled(CompiledBackend):
    name = "perturbed-compiled"
    description = "compiled with a 1e-6 error injected into newview"

    def newview_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        z, s = super().newview_inner_inner(
            u_inv, a1, a2, z1, z2, scale1, scale2
        )
        return z + 1e-6, s


class TestShadowCompiled:
    def test_silent_on_honest_compiled(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=5)
        shadow = ShadowBackend(primary=CompiledBackend())
        lnl = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(alpha=0.9), backend=shadow,
        ).log_likelihood()
        ref = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(alpha=0.9), backend="reference",
        ).log_likelihood()
        assert lnl == pytest.approx(ref, abs=1e-9)
        assert shadow.checks > 0

    def test_catches_planted_perturbation(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=5)
        shadow = ShadowBackend(primary=_PerturbedCompiled())
        with pytest.raises(BackendMismatchError, match="newview"):
            make_engine(
                sim.alignment.compress(), sim.tree.copy(), gtr(),
                GammaRates(alpha=0.9), backend=shadow,
            ).log_likelihood()


class TestWorkersBitParity:
    """compiled + workers=2 must equal serial compiled exactly."""

    def test_ml_search_workers_delta_zero(self):
        from repro.search import SearchConfig, ml_search

        sim = simulate_dataset(n_taxa=8, n_sites=250, seed=13)
        config = SearchConfig(radii=(3,), max_spr_rounds=1, seed=0)
        serial = ml_search(
            sim.alignment, config=config, backend="compiled"
        )
        parallel = ml_search(
            sim.alignment, config=config, backend="compiled",
            workers=2, execution="threads",
        )
        assert parallel.lnl - serial.lnl == 0.0
        assert parallel.tree.to_newick() == serial.tree.to_newick()

    def test_place_queries_workers_delta_zero(self):
        from repro.search.epa import place_queries

        sim = simulate_dataset(n_taxa=8, n_sites=220, seed=23)
        aln = sim.alignment
        seq = aln.sequence(aln.taxa[0])
        queries = {"q0": seq, "q1": seq[::-1]}
        serial = place_queries(
            aln, sim.tree, queries, gtr(), GammaRates(1.0, 4),
            backend="compiled",
        )
        parallel = place_queries(
            aln, sim.tree, queries, gtr(), GammaRates(1.0, 4),
            backend="compiled", workers=2, execution="threads",
        )
        for rs, rp in zip(serial, parallel):
            assert rs.query == rp.query
            assert rs.placements == rp.placements  # frozen floats: bitwise


class TestFallback:
    def test_broken_cc_falls_back_to_blocked(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        monkeypatch.setattr(ck_build, "_spec_cache", None)
        monkeypatch.setattr(ck_backend, "_warned_fallback", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = CompiledBackend()
        assert backend.fallback_reason is not None
        assert "/nonexistent-compiler" in backend.fallback_reason
        assert isinstance(backend._delegate, BlockedBackend)
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "falling back" in str(w.message)
            for w in caught
        )
        # the fallback still computes correct numbers
        sim = simulate_dataset(n_taxa=6, n_sites=150, seed=3)
        got = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(0.8), backend=backend,
        ).log_likelihood()
        ref = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(0.8), backend="reference",
        ).log_likelihood()
        assert got == pytest.approx(ref, abs=1e-9)

    def test_find_compiler_error_mentions_cc(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        with pytest.raises(CompilerUnavailable, match="nonexistent-compiler"):
            ck_build.find_compiler()

    def test_probe_status_never_raises(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        monkeypatch.setattr(ck_build, "_spec_cache", None)
        status = probe_status()
        assert status.available is False
        assert status.reason and "nonexistent-compiler" in status.reason


@pytest.mark.skipif(not HAVE_CC, reason="no C toolchain in this environment")
class TestBuildCache:
    def test_object_reused_across_loads(self, tmp_path):
        ck_build.load_kernels(4, 2, cache_dir=tmp_path)
        objects = list(tmp_path.glob("plf_4s_2r_*.so"))
        assert len(objects) == 1
        mtime = objects[0].stat().st_mtime_ns
        ck_build.load_kernels(4, 2, cache_dir=tmp_path)
        assert objects[0].stat().st_mtime_ns == mtime  # cache hit, no rebuild
        assert not list(tmp_path.glob("*.tmp"))  # temp names cleaned up

    def test_cache_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ck_build.CACHE_ENV, str(tmp_path / "objcache"))
        assert ck_build.default_cache_dir() == tmp_path / "objcache"
        status = probe_status()
        assert status.cache_dir == str(tmp_path / "objcache")

    def test_compiled_not_falling_back_here(self):
        """With a toolchain present the backend must actually compile."""
        backend = CompiledBackend()
        assert backend.fallback_reason is None
        d = _random_inputs(0, 31, 4)
        z, s = backend.newview_inner_inner(
            d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
            d["scale1"], d["scale2"],
        )
        z_ref, s_ref = kernels.newview_inner_inner(
            d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
            d["scale1"], d["scale2"],
        )
        np.testing.assert_allclose(z, z_ref, rtol=0.0, atol=ATOL)
        np.testing.assert_array_equal(s, s_ref)
