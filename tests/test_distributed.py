"""Integration tests: the distributed engine vs the serial engine."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.parallel import DistributedEngine, SimMPI, distribute_block
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.search import optimize_all_branches, optimize_branch, spr_round


@pytest.fixture(scope="module")
def problem():
    sim = simulate_dataset(n_taxa=8, n_sites=300, seed=55)
    pat = sim.alignment.compress()
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    gamma = GammaRates(0.7, 4)
    return sim, pat, model, gamma


class TestEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 7])
    def test_log_likelihood_matches_serial(self, problem, n_ranks):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        dist = DistributedEngine(
            pat, sim.tree.copy(), model, gamma, n_ranks=n_ranks
        )
        assert dist.log_likelihood() == pytest.approx(
            serial.log_likelihood(), abs=1e-8
        )

    def test_site_lnl_gathered_in_order(self, problem):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        dist = DistributedEngine(pat, sim.tree.copy(), model, gamma, n_ranks=3)
        np.testing.assert_allclose(
            dist.site_log_likelihoods(),
            serial.site_log_likelihoods(),
            atol=1e-10,
        )

    def test_derivatives_match_serial(self, problem):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        tree2 = sim.tree.copy()
        dist = DistributedEngine(pat, tree2, model, gamma, n_ranks=4)
        eid = serial.tree.edge_ids[2]
        sb_serial = serial.edge_sum_buffer(eid)
        sb_dist = dist.edge_sum_buffer(tree2.edge_ids[2])
        for t in (0.05, 0.2, 0.9):
            a = serial.branch_derivatives(sb_serial, t)
            b = dist.branch_derivatives(sb_dist, t)
            assert a[1] == pytest.approx(b[1], rel=1e-10)
            assert a[2] == pytest.approx(b[2], rel=1e-10)

    def test_block_distribution_also_exact(self, problem):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        dist = DistributedEngine(
            pat,
            sim.tree.copy(),
            model,
            gamma,
            n_ranks=4,
            distribution=distribute_block(pat.n_patterns, 4),
        )
        assert dist.log_likelihood() == pytest.approx(
            serial.log_likelihood(), abs=1e-8
        )


class TestSearchOnDistributedEngine:
    """ExaML's point: the search code is oblivious to the distribution."""

    def test_branch_optimization_matches_serial(self, problem):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        tree2 = sim.tree.copy()
        dist = DistributedEngine(pat, tree2, model, gamma, n_ranks=3)
        lnl_serial = optimize_all_branches(serial, passes=2)
        lnl_dist = optimize_all_branches(dist, passes=2)
        assert lnl_dist == pytest.approx(lnl_serial, abs=1e-5)

    def test_single_branch_same_optimum(self, problem):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        tree2 = sim.tree.copy()
        dist = DistributedEngine(pat, tree2, model, gamma, n_ranks=2)
        e_serial = serial.tree.edge_ids[0]
        e_dist = tree2.edge_ids[0]
        r1 = optimize_branch(serial, e_serial)
        r2 = optimize_branch(dist, e_dist)
        assert r1.length == pytest.approx(r2.length, rel=1e-6)

    def test_spr_round_runs_distributed(self, problem):
        sim, pat, model, gamma = problem
        from repro.phylo import random_topology

        bad_tree = random_topology(list(pat.taxa), np.random.default_rng(3))
        dist = DistributedEngine(pat, bad_tree, model, gamma, n_ranks=2)
        optimize_all_branches(dist, passes=1)
        stats = spr_round(dist, radius=4)
        assert stats.lnl_after >= stats.lnl_before
        assert dist.comm_seconds > 0

    def test_communication_counted_per_reduction(self, problem):
        sim, pat, model, gamma = problem
        mpi = SimMPI(4)
        dist = DistributedEngine(
            pat, sim.tree.copy(), model, gamma, n_ranks=4, mpi=mpi
        )
        dist.log_likelihood()
        assert mpi.allreduce_calls == 1
        sb = dist.edge_sum_buffer(dist.default_edge())
        dist.branch_derivatives(sb, 0.1)
        assert mpi.allreduce_calls == 2


class TestValidation:
    def test_rank_mismatch_rejected(self, problem):
        sim, pat, model, gamma = problem
        with pytest.raises(ValueError, match="mismatch"):
            DistributedEngine(
                pat, sim.tree.copy(), model, gamma, n_ranks=3, mpi=SimMPI(2)
            )

    def test_zero_ranks_rejected(self, problem):
        sim, pat, model, gamma = problem
        with pytest.raises(ValueError, match="rank"):
            DistributedEngine(pat, sim.tree.copy(), model, gamma, n_ranks=0)


class TestProcessesExecution:
    """PR 5: each simulated rank backed by a real worker process."""

    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_lnl_and_derivatives_bit_identical(self, problem, n_ranks):
        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        edge = serial.default_edge()
        t = sim.tree.edge(edge).length
        ref = serial.branch_derivatives(serial.edge_sum_buffer(edge), t)
        with DistributedEngine(
            pat, sim.tree.copy(), model, gamma, n_ranks=n_ranks,
            execution="processes",
        ) as dist:
            assert dist.log_likelihood() - serial.log_likelihood() == 0.0
            got = dist.branch_derivatives(dist.edge_sum_buffer(edge), t)
            for g, s in zip(got, ref):
                assert g - s == 0.0
            # reductions still go through the modelled interconnect
            assert dist.mpi.allreduce_calls >= 2
            if n_ranks > 1:
                assert dist.comm_seconds > 0.0
        from repro.parallel import active_arena_segments

        assert active_arena_segments() == []

    def test_injected_rank_death_kills_real_worker(self, problem):
        from repro.faults import FaultPlan, FaultSpec

        sim, pat, model, gamma = problem
        serial = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
        plan = FaultPlan(
            (FaultSpec(kind="rank-death", at_calls=(1,), rank=1),), seed=0
        )
        with DistributedEngine(
            pat, sim.tree.copy(), model, gamma, n_ranks=3,
            mpi=SimMPI(3, fault_plan=plan), execution="processes",
        ) as dist:
            first = dist.log_likelihood()   # allreduce call 0: clean
            assert first - serial.log_likelihood() == 0.0
            second = dist.log_likelihood()  # call 1: rank 1 dies
            assert second - serial.log_likelihood() == 0.0
            assert dist.dead_ranks == {1}
            assert dist.adoptions[1] in dist.alive_ranks
            # the real worker was killed; the next region notices the
            # broken pipe and replays on the adopter, still bit-exact
            third = dist.log_likelihood()
            assert third - serial.log_likelihood() == 0.0
            assert dist.pool.dead == {1}

    def test_abort_policy_propagates(self, problem):
        from repro.faults import FaultPlan, FaultSpec, RankFailure

        sim, pat, model, gamma = problem
        plan = FaultPlan(
            (FaultSpec(kind="rank-death", at_calls=(0,), rank=0),), seed=0
        )
        with DistributedEngine(
            pat, sim.tree.copy(), model, gamma, n_ranks=2,
            mpi=SimMPI(2, fault_plan=plan), execution="processes",
            on_rank_failure="abort",
        ) as dist:
            with pytest.raises(RankFailure):
                dist.log_likelihood()
