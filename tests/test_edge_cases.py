"""Edge-case and failure-path coverage across modules."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.harness.report import format_series, format_size, format_table
from repro.mic import MIC512, Op, OffloadRuntime, TransferModel
from repro.parallel import SimMPI
from repro.phylo import Alignment, GammaRates, Tree, gtr


class TestReportFormatting:
    def test_format_size(self):
        assert format_size(10_000) == "10K"
        assert format_size(4_000_000) == "4000K"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["longer", 22.25]])
        lines = text.splitlines()
        # all rows equal width
        assert len({len(l) for l in lines}) <= 2
        assert "22.25" in text or "22.2" in text

    def test_format_table_title_underline(self):
        text = format_table(["x"], [["y"]], title="My Title")
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_format_series(self):
        text = format_series(["a", "b"], {"s1": [1.0, 2.0]})
        assert "s1" in text and "2.00" in text


class TestZeroLikelihoodPaths:
    def test_orthogonal_root_vectors_raise(self):
        """A site likelihood of exactly zero must raise, not silently
        produce -inf (kernel-level guard; the engine cannot reach exact
        zero because eigendecomposition round-off keeps P(0) ~ I only to
        1e-16, which the next test pins down)."""
        from repro.core.kernels import site_log_likelihoods

        z_l = np.zeros((2, 1, 4))
        z_r = np.zeros((2, 1, 4))
        z_l[:, 0, 0] = 1.0
        z_r[:, 0, 1] = 1.0  # orthogonal: product is exactly zero
        exps = np.ones((1, 4))
        with pytest.raises(FloatingPointError, match="site likelihood"):
            site_log_likelihoods(
                z_l, z_r, exps, np.ones(1), np.zeros(2, dtype=np.int64)
            )

    def test_contradictory_data_at_zero_distance_is_tiny(self):
        """Incompatible tips at zero distance: likelihood collapses to
        round-off scale (ln L per site < -30) but stays finite."""
        aln = Alignment.from_sequences(
            {"a": "A" * 4, "b": "C" * 4, "c": "A" * 4}
        )
        tree = Tree.from_newick("(a:0.0,b:0.0,c:0.0);")
        engine = LikelihoodEngine(
            aln.compress(), tree, gtr(), GammaRates(1.0, 1)
        )
        site = engine.site_log_likelihoods()
        assert np.all(site < -30)
        assert np.all(np.isfinite(site))

    def test_compatible_data_at_zero_distance_fine(self):
        aln = Alignment.from_sequences({"a": "ACGT", "b": "ACGT", "c": "ACGT"})
        tree = Tree.from_newick("(a:0.0,b:0.0,c:0.0);")
        engine = LikelihoodEngine(
            aln.compress(), tree, gtr(), GammaRates(1.0, 1)
        )
        # likelihood of identical sequences at zero distance ~ product of
        # stationary frequencies
        expected = 4 * np.log(0.25)
        assert engine.log_likelihood() == pytest.approx(expected, abs=1e-3)


class TestOffloadRuntime:
    def test_transfer_time_components(self):
        tm = TransferModel(latency_s=1e-5, bandwidth_bs=1e9)
        assert tm.transfer_time(0) == 0.0
        assert tm.transfer_time(1e9) == pytest.approx(1e-5 + 1.0)
        with pytest.raises(ValueError):
            tm.transfer_time(-1)

    def test_invoke_accumulates(self):
        rt = OffloadRuntime(invocation_latency_s=1e-4)
        t = rt.invoke(5e-4, bytes_to_card=1024)
        assert t > 6e-4
        assert rt.calls == 1
        assert rt.overhead_seconds > 1e-4


class TestSimMpiBarrier:
    def test_barrier_costs_time(self):
        mpi = SimMPI(8)
        before = mpi.comm_seconds
        mpi.barrier()
        assert mpi.comm_seconds > before

    def test_single_rank_barrier_free(self):
        mpi = SimMPI(1)
        mpi.barrier()
        assert mpi.comm_seconds == 0.0


class TestIsaCosts:
    def test_unknown_op_cost_raises(self):
        from dataclasses import replace

        stripped = replace(MIC512, issue_cost={Op.VLOAD: 1.0})
        with pytest.raises(KeyError):
            stripped.cost(Op.VMUL)

    def test_gather_emulation_cost_on_avx(self):
        from repro.mic import AVX256

        # emulated gather must cost more than a plain vector load
        assert AVX256.cost(Op.VGATHER) > AVX256.cost(Op.VLOAD)

    def test_vector_bytes(self):
        assert MIC512.vector_bytes == 64


class TestTreeEdgeCases:
    def test_find_edge_missing(self):
        t = Tree.from_newick("((a,b),(c,d));")
        a, c = t.node_by_name("a"), t.node_by_name("c")
        with pytest.raises(KeyError, match="not adjacent"):
            t.find_edge(a, c)

    def test_node_by_name_missing(self):
        t = Tree.from_newick("(a,b,c);")
        with pytest.raises(KeyError, match="no leaf"):
            t.node_by_name("zebra")

    def test_remove_node_with_edges_refused(self):
        t = Tree.from_newick("(a,b,c);")
        with pytest.raises(ValueError, match="incident"):
            t.remove_node(t.node_by_name("a"))

    def test_suppress_requires_degree_two(self):
        t = Tree.from_newick("(a,b,c);")
        internal = t.internal_nodes()[0]
        with pytest.raises(ValueError, match="degree"):
            t.suppress_node(internal)

    def test_split_edge_fraction_validated(self):
        t = Tree.from_newick("(a:1,b:1,c:1);")
        with pytest.raises(ValueError, match="fraction"):
            t.split_edge(t.edge_ids[0], fraction=1.5)

    def test_nni_on_pendant_edge_refused(self):
        t = Tree.from_newick("((a,b),(c,d));")
        leaf = t.node_by_name("a")
        pendant = t.incident_edges(leaf)[0]
        with pytest.raises(ValueError, match="internal"):
            t.nni_swap(pendant)


class TestEngineEdgeCases:
    def test_negative_branch_rejected_at_evaluate(self):
        aln = Alignment.from_sequences({"a": "ACGT", "b": "ACGA", "c": "ACGC"})
        tree = Tree.from_newick("(a:0.1,b:0.1,c:0.1);")
        engine = LikelihoodEngine(aln.compress(), tree, gtr())
        tree.edge(tree.edge_ids[0]).length = -0.5
        with pytest.raises(ValueError, match="negative"):
            engine.log_likelihood(tree.edge_ids[0])

    def test_three_taxon_star(self):
        aln = Alignment.from_sequences({"a": "ACGT", "b": "ACGA", "c": "ACGC"})
        tree = Tree.from_newick("(a:0.1,b:0.1,c:0.1);")
        engine = LikelihoodEngine(aln.compress(), tree, gtr(), GammaRates(1.0, 4))
        lnl = engine.log_likelihood()
        assert np.isfinite(lnl) and lnl < 0

    def test_two_taxon_tree(self):
        aln = Alignment.from_sequences({"a": "ACGTACGT", "b": "ACGAACGA"})
        tree = Tree.from_newick("(a:0.2,b:0.2);")
        engine = LikelihoodEngine(aln.compress(), tree, gtr(), GammaRates(1.0, 4))
        lnl = engine.log_likelihood()
        assert np.isfinite(lnl)
        from repro.search import optimize_branch

        res = optimize_branch(engine, tree.edge_ids[0])
        assert res.converged
