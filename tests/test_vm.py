"""Tests for the vector VM: numerics, cycle accounting, memory system."""

import numpy as np
import pytest

from repro.mic import (
    AVX256,
    MIC512,
    Instruction,
    Op,
    VectorProgram,
    xeon_e5_device,
    xeon_phi_device,
)


@pytest.fixture()
def vm():
    return xeon_phi_device().make_vm()


def simple_mul_program(vm, n=8):
    a = vm.alloc(n)
    b = vm.alloc(n)
    c = vm.alloc(n)
    vm.write_array(a, np.arange(1.0, n + 1))
    vm.write_array(b, np.full(n, 2.0))
    prog = VectorProgram("mul")
    prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a))
    prog.emit(Instruction(Op.VLOAD, dest="v1", addr=b))
    prog.emit(Instruction(Op.VMUL, dest="v2", srcs=("v0", "v1")))
    prog.emit(Instruction(Op.VSTORE, srcs=("v2",), addr=c))
    return prog, c


class TestNumerics:
    def test_vector_multiply(self, vm):
        prog, out = simple_mul_program(vm)
        vm.run(prog)
        np.testing.assert_array_equal(
            vm.read_array(out, 8), np.arange(1.0, 9.0) * 2.0
        )

    def test_fma(self, vm):
        a = vm.alloc(8)
        vm.write_array(a, np.full(8, 3.0))
        prog = VectorProgram("fma")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a))
        prog.emit(Instruction(Op.VSET, dest="v1", values=(2.0,) * 8))
        prog.emit(Instruction(Op.VSET, dest="v2", values=(1.0,) * 8))
        prog.emit(Instruction(Op.VFMA, dest="v3", srcs=("v0", "v1", "v2")))
        vm.run(prog)
        np.testing.assert_array_equal(vm.vreg("v3"), np.full(8, 7.0))

    def test_shuffle(self, vm):
        prog = VectorProgram("shuf")
        prog.emit(Instruction(Op.VSET, dest="v0", values=tuple(float(i) for i in range(8))))
        prog.emit(Instruction(Op.VSHUF, dest="v1", srcs=("v0",), pattern=(7, 6, 5, 4, 3, 2, 1, 0)))
        vm.run(prog)
        np.testing.assert_array_equal(vm.vreg("v1"), np.arange(8)[::-1].astype(float))

    def test_hadd_and_scalar_chain(self, vm):
        prog = VectorProgram("hadd")
        prog.emit(Instruction(Op.VSET, dest="v0", values=tuple(float(i) for i in range(8))))
        prog.emit(Instruction(Op.HADD, dest="s0", srcs=("v0",)))
        prog.emit(Instruction(Op.SLOG, dest="s1", srcs=("s0",)))
        vm.run(prog)
        assert vm.sreg("s0") == 28.0
        assert vm.sreg("s1") == pytest.approx(np.log(28.0))

    def test_gather(self, vm):
        a = vm.alloc(16)
        vm.write_array(a, np.arange(16.0))
        prog = VectorProgram("gather")
        addrs = tuple(a + i * 16 for i in range(8))  # every other double
        prog.emit(Instruction(Op.VGATHER, dest="v0", addrs=addrs))
        vm.run(prog)
        np.testing.assert_array_equal(vm.vreg("v0"), np.arange(0.0, 16.0, 2.0))


class TestAlignment:
    def test_misaligned_vector_load_rejected(self, vm):
        prog = VectorProgram("bad")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=8))  # not 64B-aligned
        with pytest.raises(ValueError, match="misaligned"):
            vm.run(prog)

    def test_avx_accepts_32_byte_alignment(self):
        vm = xeon_e5_device().make_vm()
        a = vm.alloc(8)
        prog = VectorProgram("ok")
        prog.emit(Instruction(Op.VLOAD, dest="v0", addr=a + 32))
        vm.run(prog)  # must not raise

    def test_alloc_respects_isa_alignment(self, vm):
        for _ in range(5):
            assert vm.alloc(3) % 64 == 0


class TestCycleAccounting:
    def test_cycles_positive_and_monotone_in_work(self, vm):
        prog1, _ = simple_mul_program(vm)
        small = vm.run(prog1)
        big_prog = VectorProgram("big")
        base = vm.alloc(8 * 200)
        for i in range(200):
            big_prog.emit(Instruction(Op.VLOAD, dest="v0", addr=base + i * 64))
        big = vm.run(big_prog)
        assert 0 < small.cycles < big.cycles

    def test_fma_costs_two_ops_without_fma(self):
        assert AVX256.cost(Op.VFMA) == AVX256.cost(Op.VMUL) + AVX256.cost(Op.VADD)
        assert MIC512.cost(Op.VFMA) == 1.0

    def test_flops_counted(self, vm):
        prog, _ = simple_mul_program(vm)
        stats = vm.run(prog)
        assert stats.flops == 8  # one 8-lane multiply

    def test_bandwidth_floor_applies(self, vm):
        # stream far more data than compute: bandwidth term dominates
        n = 4096
        base = vm.alloc(n)
        prog = VectorProgram("stream")
        for i in range(0, n, 8):
            prog.emit(Instruction(Op.VLOAD, dest="v0", addr=base + i * 8))
        stats = vm.run(prog)
        assert stats.cycles >= stats.bandwidth_cycles
        assert stats.memory.dram_read_bytes >= n * 8


class TestStreamingStores:
    def test_nt_store_avoids_rfo_traffic(self, vm):
        n = 1024
        out = vm.alloc(n)
        def store_prog(op):
            prog = VectorProgram("st")
            prog.emit(Instruction(Op.VSET, dest="v0", values=(1.0,) * 8))
            for i in range(0, n, 8):
                prog.emit(Instruction(op, srcs=("v0",), addr=out + i * 8))
            return prog
        nt = vm.run(store_prog(Op.VSTORE_NT))
        regular = vm.run(store_prog(Op.VSTORE))
        # regular stores read each line (RFO) then write it back: 2x traffic
        assert regular.memory.dram_bytes == pytest.approx(
            2 * nt.memory.dram_bytes, rel=0.05
        )
        assert nt.memory.dram_read_bytes == 0

    def test_nt_store_data_lands_in_memory(self, vm):
        out = vm.alloc(8)
        prog = VectorProgram("nt")
        prog.emit(Instruction(Op.VSET, dest="v0", values=tuple(range(8))))
        prog.emit(Instruction(Op.VSTORE_NT, srcs=("v0",), addr=out))
        vm.run(prog)
        np.testing.assert_array_equal(vm.read_array(out, 8), np.arange(8.0))


class TestPrefetch:
    def test_prefetch_hides_latency(self, vm):
        n = 2048
        base = vm.alloc(n)

        def prog_with_prefetch(distance):
            prog = VectorProgram("pf")
            for i in range(0, n, 8):
                target = i + distance * 8
                if distance and target < n:
                    prog.emit(Instruction(Op.PREFETCH, addr=base + target * 8))
                prog.emit(Instruction(Op.VLOAD, dest="v0", addr=base + i * 8))
            return prog

        vm.hierarchy.hw_prefetch_enabled = False
        cold = vm.run(prog_with_prefetch(0))
        warm = vm.run(prog_with_prefetch(16))
        assert warm.stall_cycles < cold.stall_cycles

    def test_hw_prefetcher_covers_streams(self, vm):
        n = 2048
        base = vm.alloc(n)
        prog = VectorProgram("stream")
        for i in range(0, n, 8):
            prog.emit(Instruction(Op.VLOAD, dest="v0", addr=base + i * 8))
        vm.hierarchy.hw_prefetch_enabled = True
        with_hw = vm.run(prog)
        vm.hierarchy.hw_prefetch_enabled = False
        without = vm.run(prog)
        assert with_hw.stall_cycles < without.stall_cycles


class TestHostApi:
    def test_alloc_out_of_memory(self):
        vm = xeon_phi_device().make_vm(memory_doubles=128)
        with pytest.raises(MemoryError):
            vm.alloc(4096)

    def test_write_read_roundtrip(self, vm):
        a = vm.alloc(10)
        data = np.linspace(0, 1, 10)
        vm.write_array(a, data)
        np.testing.assert_array_equal(vm.read_array(a, 10), data)
