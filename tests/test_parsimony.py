"""Tests for Fitch parsimony and stepwise-addition starting trees."""

import numpy as np
import pytest

from repro.phylo import (
    Alignment,
    Tree,
    fitch_score,
    simulate_dataset,
    stepwise_addition_tree,
)


def patterns_of(seqs: dict[str, str]):
    return Alignment.from_sequences(seqs).compress()


class TestFitchScore:
    def test_constant_columns_cost_zero(self):
        pat = patterns_of({"a": "AAAA", "b": "AAAA", "c": "AAAA"})
        tree = Tree.from_newick("(a,b,c);")
        assert fitch_score(tree, pat) == 0

    def test_single_mutation_column(self):
        pat = patterns_of({"a": "A", "b": "A", "c": "C"})
        tree = Tree.from_newick("(a,b,c);")
        assert fitch_score(tree, pat) == 1

    def test_weights_respected(self):
        # same column repeated 5 times = weight 5
        pat = patterns_of({"a": "AAAAA", "b": "CCCCC"})
        tree = Tree.from_newick("(a:1,b:1);")
        assert fitch_score(tree, pat) == 5

    def test_ambiguity_costs_nothing_when_compatible(self):
        pat = patterns_of({"a": "A", "b": "N", "c": "A"})
        tree = Tree.from_newick("(a,b,c);")
        assert fitch_score(tree, pat) == 0

    def test_known_quartet_example(self):
        # classic: ((a,b),(c,d)) with a=b=A, c=d=C needs exactly 1 change
        pat = patterns_of({"a": "A", "b": "A", "c": "C", "d": "C"})
        good = Tree.from_newick("((a,b),(c,d));")
        bad = Tree.from_newick("((a,c),(b,d));")
        assert fitch_score(good, pat) == 1
        assert fitch_score(bad, pat) == 2

    def test_score_depends_on_topology(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=17)
        pat = sim.alignment.compress()
        scores = set()
        rng = np.random.default_rng(0)
        from repro.phylo import random_topology

        for seed in range(5):
            t = random_topology(list(pat.taxa), np.random.default_rng(seed))
            scores.add(fitch_score(t, pat))
        assert len(scores) > 1


class TestStepwiseAddition:
    def test_builds_valid_binary_tree(self):
        sim = simulate_dataset(n_taxa=10, n_sites=200, seed=8)
        pat = sim.alignment.compress()
        tree = stepwise_addition_tree(pat, np.random.default_rng(0))
        tree.check()
        assert sorted(tree.leaf_names()) == sorted(pat.taxa)

    def test_better_than_random(self):
        from repro.phylo import random_topology

        sim = simulate_dataset(n_taxa=10, n_sites=400, seed=9)
        pat = sim.alignment.compress()
        sw = stepwise_addition_tree(pat, np.random.default_rng(0))
        sw_score = fitch_score(sw, pat)
        random_scores = [
            fitch_score(
                random_topology(list(pat.taxa), np.random.default_rng(s)), pat
            )
            for s in range(5)
        ]
        assert sw_score <= min(random_scores)

    def test_recovers_easy_topology(self):
        """With clean data, stepwise addition finds the true tree."""
        sim = simulate_dataset(n_taxa=7, n_sites=2000, seed=10)
        pat = sim.alignment.compress()
        tree = stepwise_addition_tree(pat, np.random.default_rng(1))
        assert tree.robinson_foulds(sim.tree) <= 2

    def test_two_and_three_taxa(self):
        pat2 = patterns_of({"a": "ACGT", "b": "ACGA"})
        t2 = stepwise_addition_tree(pat2, np.random.default_rng(0))
        assert t2.n_leaves == 2
        pat3 = patterns_of({"a": "ACGT", "b": "ACGA", "c": "ACTT"})
        t3 = stepwise_addition_tree(pat3, np.random.default_rng(0))
        t3.check()
        assert t3.n_leaves == 3

    def test_too_few_taxa_rejected(self):
        pat = patterns_of({"a": "ACGT"})
        with pytest.raises(ValueError, match="at least 2"):
            stepwise_addition_tree(pat, np.random.default_rng(0))
