"""Engine-level behaviour: pulley principle, caching, invalidation."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.core.traversal import KernelKind
from repro.phylo import GammaRates, gtr, simulate_dataset


class TestPulleyPrinciple:
    def test_lnl_identical_for_all_root_edges(self, small_engine):
        vals = [small_engine.log_likelihood(e) for e in small_engine.tree.edge_ids]
        assert max(vals) - min(vals) < 1e-9

    def test_site_lnl_identical_for_all_root_edges(self, small_engine):
        ref = small_engine.site_log_likelihoods(small_engine.tree.edge_ids[0])
        for e in small_engine.tree.edge_ids[1:]:
            np.testing.assert_allclose(
                small_engine.site_log_likelihoods(e), ref, atol=1e-9
            )

    def test_site_lnl_sums_to_total(self, small_engine):
        site = small_engine.site_log_likelihoods()
        total = float(np.dot(site, small_engine.patterns.weights))
        assert total == pytest.approx(small_engine.log_likelihood(), abs=1e-9)


class TestCaching:
    def test_repeat_evaluation_plans_no_ops(self, small_engine):
        e = small_engine.tree.edge_ids[0]
        small_engine.log_likelihood(e)
        desc = small_engine.plan_traversal(e)
        assert len(desc) == 0

    def test_branch_change_invalidates_minimal_set(self, small_engine):
        tree = small_engine.tree
        root = tree.edge_ids[0]
        small_engine.log_likelihood(root)
        # change a pendant branch far from the root edge
        leaf = tree.leaves()[-1]
        pend = tree.incident_edges(leaf)[0]
        tree.edge(pend).length *= 1.5
        desc = small_engine.plan_traversal(root)
        # only the CLAs on the path from the changed branch to the root
        # need recomputation, never the whole tree
        assert 0 < len(desc) < len(tree.internal_nodes())

    def test_branch_change_changes_lnl(self, small_engine):
        lnl1 = small_engine.log_likelihood()
        e = small_engine.tree.edge_ids[2]
        small_engine.tree.edge(e).length += 0.2
        lnl2 = small_engine.log_likelihood()
        assert lnl1 != lnl2

    def test_topology_change_detected_without_hooks(self, small_engine):
        """Signature-based validity: SPR without any notification."""
        tree = small_engine.tree
        lnl1 = small_engine.log_likelihood()
        leaf = tree.node_by_name(tree.leaf_names()[0])
        pendant = tree.incident_edges(leaf)[0]
        targets = tree.spr_candidates(pendant, radius=5, subtree_root=leaf)
        _, undo = tree.spr(pendant, targets[-1], subtree_root=leaf)
        lnl2 = small_engine.log_likelihood()
        undo()
        lnl3 = small_engine.log_likelihood()
        assert lnl2 != pytest.approx(lnl1, abs=1e-6) or True  # may coincide
        assert lnl3 == pytest.approx(lnl1, abs=1e-9)

    def test_model_change_invalidates_all(self, small_engine):
        small_engine.log_likelihood()
        small_engine.set_alpha(2.0)
        desc = small_engine.plan_traversal(small_engine.default_edge())
        assert len(desc) == len(small_engine.tree.internal_nodes())

    def test_cla_eviction_bounds_memory(self):
        sim = simulate_dataset(n_taxa=7, n_sites=60, seed=2)
        pat = sim.alignment.compress()
        engine = LikelihoodEngine(pat, sim.tree, gtr(), GammaRates(1.0, 4))
        tree = engine.tree
        for _ in range(40):
            leaf = tree.node_by_name(tree.leaf_names()[0])
            pendant = tree.incident_edges(leaf)[0]
            targets = tree.spr_candidates(pendant, radius=3, subtree_root=leaf)
            _, undo = tree.spr(pendant, targets[0], subtree_root=leaf)
            engine.log_likelihood()
            undo()
            engine.log_likelihood()
        assert len(engine._clas) <= 4 * tree.n_leaves


class TestCounters:
    def test_counters_accumulate(self, small_engine):
        before = small_engine.counters.copy()
        small_engine.log_likelihood()
        delta = small_engine.counters.diff(before)
        assert delta.calls.get(KernelKind.EVALUATE, 0) == 1
        assert delta.total_calls() >= 1

    def test_site_units_scale_with_patterns(self, small_engine):
        before = small_engine.counters.copy()
        small_engine.drop_caches()
        small_engine.log_likelihood()
        delta = small_engine.counters.diff(before)
        for kind, calls in delta.calls.items():
            assert delta.site_units[kind] == calls * small_engine.patterns.n_patterns

    def test_merged_names(self, small_engine):
        small_engine.log_likelihood()
        merged = small_engine.counters.merged()
        assert set(merged) == {
            "newview",
            "evaluate",
            "derivative_sum",
            "derivative_core",
        }


class TestValidation:
    def test_model_alphabet_mismatch_rejected(self, small_sim):
        from repro.phylo import poisson_protein

        pat = small_sim.alignment.compress()
        with pytest.raises(ValueError, match="states"):
            LikelihoodEngine(pat, small_sim.tree.copy(), poisson_protein())

    def test_cla_memory_reporting(self, small_engine):
        small_engine.log_likelihood()
        expected_one = (
            small_engine.patterns.n_patterns * small_engine.n_rates * 4 * 8
        )
        mem = small_engine.cla_memory_bytes()
        n_internal = len(small_engine.tree.internal_nodes())
        assert mem >= n_internal * expected_one
