"""Repository-wide quality gates: docstrings, exports, model consistency.

These tests guard properties of the codebase itself rather than one
feature: every public module/class/function is documented, ``__all__``
lists are accurate, and the two performance layers (cycle-level VM and
analytic cost model) stay mutually consistent.
"""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro

PACKAGES = [
    "repro",
    "repro.phylo",
    "repro.core",
    "repro.search",
    "repro.mic",
    "repro.parallel",
    "repro.perf",
    "repro.harness",
    "repro.obs",
]


def all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            out.append(importlib.import_module(info.name))
    return out


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in all_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_callable_documented(self):
        missing = []
        for module in all_modules():
            names = getattr(module, "__all__", None)
            if names is None:
                continue
            for name in names:
                obj = getattr(module, name, None)
                if obj is None:
                    missing.append(f"{module.__name__}.{name} (missing)")
                    continue
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if not (inspect.getdoc(obj) or "").strip():
                        missing.append(f"{module.__name__}.{name} (no docstring)")
        assert missing == []

    def test_all_exports_resolve(self):
        broken = []
        for module in all_modules():
            for name in getattr(module, "__all__", []):
                if not hasattr(module, name):
                    broken.append(f"{module.__name__}.{name}")
        assert broken == []


class TestModelConsistency:
    def test_costmodel_consistent_with_vm_measurement(self):
        """The analytic per-site cycles can never undercut the VM's
        bandwidth floor, and (modulo the calibrated efficiency factor)
        track the VM's issue measurement."""
        from repro.perf.costmodel import (
            PIPELINE_EFFICIENCY,
            CostModel,
            KERNELS,
            measure_kernel_cycles,
        )
        from repro.perf.platforms import XEON_E5_2680_2S, XEON_PHI_5110P_1S

        for spec in (XEON_PHI_5110P_1S, XEON_E5_2680_2S):
            cm = CostModel(spec)
            meas = measure_kernel_cycles(spec.isa.name)
            for kernel in KERNELS:
                model_cyc = cm.cycles_per_site(kernel)
                bw_floor = (
                    meas[kernel].dram_bytes_per_site
                    / spec.bytes_per_cycle_per_core
                )
                eff = PIPELINE_EFFICIENCY[(spec.isa.name, kernel)]
                expected = max(
                    meas[kernel].issue_cycles_per_site / eff, bw_floor
                )
                assert model_cyc == pytest.approx(expected, rel=1e-9)

    def test_multicore_aggregation_assumption(self):
        """Chip time = per-core cycles / clock holds when per-core DRAM
        shares are modelled (the Table III aggregation): simulating the
        same total work across K cores never beats the single-core
        bandwidth share by more than the compute/bandwidth ratio."""
        from repro.perf.costmodel import measure_kernel_cycles
        from repro.perf.platforms import XEON_PHI_5110P_1S

        meas = measure_kernel_cycles("mic512")["derivative_sum"]
        spec = XEON_PHI_5110P_1S
        sites = 1_000_000
        per_core_sites = sites / spec.cores
        # per-core time from the per-core bandwidth share
        per_core_cycles = per_core_sites * meas.dram_bytes_per_site / (
            spec.bytes_per_cycle_per_core
        )
        chip_seconds = per_core_cycles / (spec.clock_ghz * 1e9)
        # chip-level check: total traffic over chip bandwidth
        total_bytes = sites * meas.dram_bytes_per_site
        chip_bw = spec.memory_bw_gbs * 1e9 * spec.bandwidth_efficiency
        assert chip_seconds == pytest.approx(total_bytes / chip_bw, rel=1e-9)


class TestObsOverhead:
    """The tracing subsystem must be effectively free while disabled."""

    def test_committed_bench_report_is_below_gate(self):
        """The committed ``BENCH_obs.json`` shows <2% disabled overhead."""
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
        assert path.exists(), "run benchmarks/bench_obs.py to regenerate"
        report = json.loads(path.read_text())
        assert report["disabled_overhead_ratio"] < report[
            "max_disabled_overhead"
        ]

    def test_live_disabled_probe_is_below_gate(self):
        """Measured now: guard probes cost <2% of one kernel dispatch.

        Uses the probe-based formulation of ``benchmarks/bench_obs.py``
        (stable to nanoseconds) rather than an end-to-end wall-clock
        diff (drowned by CI scheduler noise).
        """
        import time

        from repro.core import LikelihoodEngine
        from repro.obs import spans as obs_spans
        from repro.phylo import GammaRates, gtr, simulate_dataset

        assert not obs_spans.ENABLED
        loops = 100_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(loops):
                if obs_spans.ENABLED:  # pragma: no cover - disabled
                    raise AssertionError
            best = min(best, time.perf_counter() - t0)
        probe_s = best / loops

        sim = simulate_dataset(n_taxa=6, n_sites=500, seed=7)
        engine = LikelihoodEngine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(0.8, 4),
        )
        root = engine.default_edge()
        engine.log_likelihood(root)  # warm-up
        best = float("inf")
        for _ in range(3):
            engine.drop_caches()
            before = engine.profile.total_calls()
            t0 = time.perf_counter()
            engine.ensure_valid(root)
            best = min(best, time.perf_counter() - t0)
            dispatches = engine.profile.total_calls() - before
        dispatch_s = best / max(dispatches, 1)
        # 3 probes per dispatch, same accounting as bench_obs.py
        assert probe_s * 3 / dispatch_s < 0.02

    def test_server_hooks_are_free_while_disabled(self):
        """The live-plane gate functions cost <2% of a dispatch unserved.

        ``ml_search`` calls ``progress_update`` once per search step (a
        handful per run), the checkpoint writer once per snapshot — but
        the hooks must stay guard-cheap even if a future caller puts one
        on the dispatch path, so hold them to the same probe budget as
        the tracer's guards.
        """
        import time

        from repro.obs import server as obs_server

        assert not obs_server.ENABLED
        loops = 100_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(loops):
                if obs_server.ENABLED:  # pragma: no cover - disabled
                    raise AssertionError
            best = min(best, time.perf_counter() - t0)
        probe_ns = best / loops * 1e9
        # The full gate call (function call + guard + return) while
        # disabled — what instrumented modules actually pay when they
        # cannot inline the guard at the call site.
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(loops):
                obs_server.progress_update("x")
            best = min(best, time.perf_counter() - t0)
        call_ns = best / loops * 1e9
        # Reuse the committed dispatch cost as the denominator: hooks
        # ride the step clock (~1 per dispatch at absolute worst).
        import json
        from pathlib import Path

        report = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_obs.json")
            .read_text()
        )
        dispatch_ns = report["disabled_ns_per_dispatch"]
        assert probe_ns / dispatch_ns < 0.02
        assert call_ns / dispatch_ns < 0.02


class TestCatAssignment:
    def test_likelihood_assignment_improves(self):
        from repro.core.cat import (
            CatLikelihoodEngine,
            assign_categories_by_likelihood,
        )
        from repro.phylo import CatRates, gtr, simulate_dataset

        sim = simulate_dataset(n_taxa=6, n_sites=200, seed=91, alpha=0.4)
        pat = sim.alignment.compress()
        rng = np.random.default_rng(1)
        cat = CatRates.from_gamma(0.4, pat.n_patterns, 4, rng, weights=pat.weights)
        engine = CatLikelihoodEngine(pat, sim.tree.copy(), gtr(), cat)
        before = engine.log_likelihood()
        assign_categories_by_likelihood(engine)
        after = engine.log_likelihood()
        assert after > before
        # normalisation preserved
        mean = np.average(engine.site_rates, weights=pat.weights)
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_assignment_is_fixed_point(self):
        """Re-running the assignment on converged categories is a no-op."""
        from repro.core.cat import (
            CatLikelihoodEngine,
            assign_categories_by_likelihood,
        )
        from repro.phylo import CatRates, gtr, simulate_dataset

        sim = simulate_dataset(n_taxa=6, n_sites=150, seed=92, alpha=0.5)
        pat = sim.alignment.compress()
        rng = np.random.default_rng(2)
        cat = CatRates.from_gamma(0.5, pat.n_patterns, 4, rng, weights=pat.weights)
        engine = CatLikelihoodEngine(pat, sim.tree.copy(), gtr(), cat)
        assign_categories_by_likelihood(engine, n_iterations=5)
        lnl1 = engine.log_likelihood()
        assign_categories_by_likelihood(engine, n_iterations=2)
        assert engine.log_likelihood() == pytest.approx(lnl1, abs=1e-6)
