"""Tests for the cache hierarchy model."""

import pytest

from repro.mic.cache import CacheLevel, MemoryHierarchy
from repro.mic.memory import CACHE_LINE, DramModel


def make_hierarchy(l1=1024, l2=4096, latency=100.0, bw=2.0):
    return MemoryHierarchy(
        CacheLevel("L1", l1, 2),
        CacheLevel("L2", l2, 4),
        DramModel("test", latency_cycles=latency, bytes_per_cycle_per_core=bw),
    )


class TestCacheLevel:
    def test_size_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheLevel("bad", 1000, 3)

    def test_hit_after_fill(self):
        c = CacheLevel("c", 1024, 2)
        assert not c.lookup(5)
        c.fill(5)
        assert c.lookup(5)

    def test_lru_eviction(self):
        c = CacheLevel("c", 2 * CACHE_LINE, 2)  # one set, 2 ways
        c.fill(0)
        c.fill(1)
        c.lookup(0)  # 0 most recent
        victim = c.fill(2)
        assert victim is not None and victim[0] == 1  # LRU evicted

    def test_dirty_bit_preserved(self):
        c = CacheLevel("c", 2 * CACHE_LINE, 2)
        c.fill(0, dirty=True)
        c.fill(1)
        victim = c.fill(2)
        assert victim == (0, True)


class TestHierarchy:
    def test_first_access_misses_to_dram(self):
        h = make_hierarchy()
        r = h.access(0, 8, is_write=False, now=0.0)
        assert r.level == "DRAM"
        assert r.stall_cycles == pytest.approx(100.0)

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.access(0, 8, False, 0.0)
        r = h.access(8, 8, False, 1.0)  # same line
        assert r.level == "L1"
        assert r.stall_cycles == 0.0

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy(l1=2 * CACHE_LINE, l2=64 * CACHE_LINE)
        # touch enough lines to evict line 0 from the tiny L1
        for line in range(8):
            h.access(line * CACHE_LINE, 8, False, float(line))
        r = h.access(0, 8, False, 100.0)
        assert r.level == "L2"
        assert 0 < r.stall_cycles < 100.0

    def test_streaming_store_bypasses_caches(self):
        h = make_hierarchy()
        r = h.access(0, 64, True, 0.0, nontemporal=True)
        assert r.stall_cycles == 0.0
        assert r.dram_write_bytes == CACHE_LINE
        assert r.dram_read_bytes == 0
        # line was NOT cached
        assert not h.l1.contains(0)

    def test_write_allocate_rfo(self):
        h = make_hierarchy()
        r = h.access(0, 8, True, 0.0)
        assert r.dram_read_bytes == CACHE_LINE  # RFO fill

    def test_sw_prefetch_full_hiding(self):
        h = make_hierarchy(latency=100.0)
        h.register_prefetch(0, now=0.0)
        r = h.access(0, 8, False, now=200.0)  # prefetch long complete
        assert r.stall_cycles == 0.0
        assert h.stats.prefetch_hits == 1

    def test_sw_prefetch_partial_hiding(self):
        h = make_hierarchy(latency=100.0)
        h.register_prefetch(0, now=0.0)
        r = h.access(0, 8, False, now=40.0)  # only 40 cycles elapsed
        assert r.stall_cycles == pytest.approx(60.0)
        assert h.stats.prefetch_late == 1

    def test_hw_prefetcher_needs_training(self):
        h = make_hierarchy(latency=100.0)
        r0 = h.access(0 * CACHE_LINE, 8, False, 0.0)
        r1 = h.access(1 * CACHE_LINE, 8, False, 1.0)
        r2 = h.access(2 * CACHE_LINE, 8, False, 2.0)
        assert r0.stall_cycles == 100.0
        assert r1.stall_cycles == 100.0
        assert r2.stall_cycles == 0.0  # stream detected after 2 misses

    def test_multi_line_access_charges_both(self):
        h = make_hierarchy()
        r = h.access(CACHE_LINE - 8, 16, False, 0.0)  # straddles two lines
        assert r.dram_read_bytes == 2 * CACHE_LINE

    def test_flush_resets_state(self):
        h = make_hierarchy()
        h.access(0, 8, False, 0.0)
        h.flush()
        assert h.stats.dram_accesses == 0
        r = h.access(0, 8, False, 0.0)
        assert r.level == "DRAM"
