"""Live observability plane tests: endpoint, progress ETA, profiler.

Four angles:

* property-based (hypothesis): the ``/progress`` ETA is never negative
  and strictly decreases as steps complete under constant per-step
  cost, for arbitrary step counts and costs (driven on a synthetic
  clock — every mutator takes ``now``);
* real sockets: a served :class:`~repro.obs.server.ObsServer` answers
  ``/metrics`` (strict-parser valid), ``/healthz`` (200 ok / 503
  degraded), and ``/progress`` over actual HTTP — including *mid-run*,
  polled from a thread while ``ml_search`` executes;
* gating: the server hooks are no-ops while disabled, and their guard
  is the same ~20 ns module-flag discipline the tracer uses (the
  quality gates hold the cost bound);
* profiler: background sampling attributes wall time to the open span
  stack and survives start/stop cycles.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import server as obs_server
from repro.obs import spans as obs_spans
from repro.obs.metrics import parse_prometheus_text
from repro.obs.profiler import SamplingProfiler
from repro.obs.server import HealthState, ProgressState
from repro.phylo import simulate_dataset


@pytest.fixture(autouse=True)
def _server_clean():
    """Every test starts and ends with the live plane fully torn down."""
    srv = obs_server.get_server()
    if srv is not None:
        srv.stop()
    obs_server.ENABLED = False
    obs_server.progress().reset()
    obs_server.health().reset()
    obs.disable()
    obs.get_registry().clear()
    yield
    srv = obs_server.get_server()
    if srv is not None:
        srv.stop()
    obs_server.ENABLED = False
    obs_server.progress().reset()
    obs_server.health().reset()
    obs.disable()
    obs.get_registry().clear()


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


# ----------------------------------------------------------------------
# hypothesis: ETA invariants on a synthetic clock
# ----------------------------------------------------------------------
class TestProgressEta:
    @given(
        total=st.integers(min_value=1, max_value=200),
        per_step=st.floats(
            min_value=1e-6, max_value=1e3,
            allow_nan=False, allow_infinity=False,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_eta_never_negative_and_decreases_under_constant_cost(
        self, total, per_step
    ):
        p = ProgressState()
        p.begin("t", total_steps=total, now=0.0)
        previous = None
        for k in range(1, total + 1):
            now = k * per_step
            p.update("stage", lnl=-1.0, now=now)
            eta = p.eta_seconds(now=now)
            assert eta is not None
            assert eta >= 0.0
            # constant per-step cost => eta == per_step * remaining,
            # which strictly decreases (to 0 at the last step)
            assert eta == pytest.approx(per_step * (total - k), rel=1e-9)
            if previous is not None:
                assert eta < previous or (eta == 0.0 and previous == 0.0)
            previous = eta
        p.finish(now=total * per_step)
        assert p.eta_seconds(now=total * per_step + 5.0) == 0.0

    @given(
        costs=st.lists(
            st.floats(
                min_value=1e-6, max_value=10.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_eta_never_negative_under_arbitrary_costs(self, costs):
        p = ProgressState()
        p.begin("t", total_steps=len(costs) + 3, now=0.0)
        now = 0.0
        for c in costs:
            now += c
            p.update("s", now=now)
            eta = p.eta_seconds(now=now)
            assert eta is not None and eta >= 0.0

    def test_eta_unknown_before_first_step_or_without_total(self):
        p = ProgressState()
        assert p.eta_seconds(now=1.0) is None  # never began
        p.begin("t", total_steps=10, now=0.0)
        assert p.eta_seconds(now=5.0) is None  # no step measured yet
        q = ProgressState()
        q.begin("t", total_steps=None, now=0.0)
        q.update("s", now=1.0)
        assert q.eta_seconds(now=2.0) is None  # no declared target

    def test_snapshot_trajectory_and_overrun_clamp(self):
        p = ProgressState()
        p.begin("t", total_steps=2, now=0.0, workers=4)
        p.update("a", lnl=-10.0, now=1.0)
        p.update("b", lnl=-9.0, now=2.0)
        p.update("c", lnl=-8.5, now=3.0)  # one step beyond the plan
        snap = p.snapshot(now=3.0)
        assert snap["steps_done"] == 3
        assert snap["eta_s"] == 0.0  # remaining clamps at zero
        assert [e["stage"] for e in snap["lnl_trajectory"]] == ["a", "b", "c"]
        assert snap["lnl"] == -8.5
        assert snap["info"] == {"workers": 4}


# ----------------------------------------------------------------------
# health state
# ----------------------------------------------------------------------
class TestHealthState:
    def test_ok_until_a_degradation_event(self):
        h = HealthState()
        assert h.snapshot(now=0.0)["status"] == "ok"
        h.event("worker_death", now=1.0, dead=[2], survivors=3)
        snap = h.snapshot(now=2.0)
        assert snap["status"] == "degraded"
        assert snap["degradation_events"][0]["kind"] == "worker_death"

    def test_checkpoint_age(self):
        h = HealthState()
        assert h.snapshot(now=0.0)["last_checkpoint"] is None
        h.checkpoint_written("/tmp/ck.json", step=7, now=10.0)
        ck = h.snapshot(now=13.5)["last_checkpoint"]
        assert ck["path"] == "/tmp/ck.json"
        assert ck["step"] == 7
        assert ck["age_s"] == pytest.approx(3.5)

    def test_dead_workers_in_open_pool_degrade(self):
        class FakePool:
            n_workers = 4
            alive = [0, 1, 3]
            dead = {2}
            adoptions = {2: 0}
            _closed = False

            class barrier_stats:
                regions = 5

        h = HealthState()
        pool = FakePool()
        h.register_pool(pool)
        snap = h.snapshot(now=0.0)
        assert snap["status"] == "degraded"
        assert snap["worker_pools"][0]["dead"] == [2]
        pool._closed = True  # a closed pool's old deaths don't degrade
        assert h.snapshot(now=1.0)["status"] == "ok"


# ----------------------------------------------------------------------
# real sockets
# ----------------------------------------------------------------------
class TestEndpoint:
    def test_all_three_endpoints_answer(self):
        obs.get_registry().counter("reqs_total", "requests").inc(2)
        srv = obs_server.serve(port=0)
        assert srv.port > 0
        status, body = _get(srv.url + "/metrics")
        assert status == 200
        families = parse_prometheus_text(body.decode())
        assert families["reqs_total"]["samples"] == [("reqs_total", {}, 2.0)]
        status, body = _get(srv.url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        obs_server.progress_begin("demo", total_steps=4)
        obs_server.progress_update("stage1", lnl=-42.0)
        status, body = _get(srv.url + "/progress")
        assert status == 200
        snap = json.loads(body)
        assert snap["task"] == "demo"
        assert snap["steps_done"] == 1
        status, _ = _get(srv.url + "/nope")
        assert status == 404

    def test_degraded_health_returns_503(self):
        srv = obs_server.serve(port=0)
        obs_server.health_event("rank_death", rank=3, adopter=0, survivors=1)
        status, body = _get(srv.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "degraded"

    def test_serve_resets_state_and_stop_disables(self):
        obs_server.serve(port=0)
        obs_server.progress_begin("one")
        srv = obs_server.serve(port=0)  # re-serve: fresh state
        assert obs_server.progress().task == ""
        assert obs_server.ENABLED
        srv.stop()
        assert not obs_server.ENABLED
        assert obs_server.get_server() is None
        obs_server.progress_begin("ignored")  # gated off: no-op
        assert obs_server.progress().task == ""

    def test_search_answers_mid_run_and_finishes(self):
        sim = simulate_dataset(n_taxa=8, n_sites=120, seed=5)
        srv = obs_server.serve(port=0)
        polled: list[dict] = []
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                s1, b1 = _get(srv.url + "/progress")
                s2, _ = _get(srv.url + "/healthz")
                s3, m = _get(srv.url + "/metrics")
                assert s1 == 200 and s2 == 200 and s3 == 200
                parse_prometheus_text(m.decode())
                polled.append(json.loads(b1))
                time.sleep(0.005)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        try:
            from repro.search import SearchConfig, ml_search

            result = ml_search(
                sim.alignment,
                config=SearchConfig(radii=(3,), seed=0, max_spr_rounds=2),
                backend="reference",
            )
        finally:
            stop.set()
            poller.join(timeout=10)
        assert result.lnl < 0
        # The poller observed the run in flight: task set, steps moving.
        mid = [p for p in polled if p["task"] == "ml_search" and not p["done"]]
        assert mid, "no mid-run /progress snapshot captured"
        assert any(p["steps_done"] > 0 for p in polled)
        final = obs_server.progress().snapshot()
        assert final["done"] and final["eta_s"] == 0.0
        assert final["lnl"] == pytest.approx(result.lnl)

    def test_place_reports_per_query_progress(self):
        from repro.phylo import Alignment, GammaRates, gtr
        from repro.search.epa import place_queries

        sim = simulate_dataset(n_taxa=7, n_sites=90, seed=9)
        aln = sim.alignment
        query = aln.taxa[2]
        ref_tree = sim.tree.copy()
        leaf = ref_tree.node_by_name(query)
        pend = ref_tree.incident_edges(leaf)[0]
        ref_tree.prune_subtree(pend, subtree_root=leaf)
        ref_tree.remove_node(leaf)
        reference = Alignment.from_sequences(
            {t: aln.sequence(t) for t in aln.taxa if t != query}
        )
        queries = {query: aln.sequence(query)}
        obs_server.serve(port=0)
        place_queries(reference, ref_tree, queries, gtr(), GammaRates(1.0, 4))
        snap = obs_server.progress().snapshot()
        assert snap["task"] == "place"
        assert snap["done"]
        assert snap["steps_done"] == len(queries)
        assert snap["total_steps"] == len(queries)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def test_search_with_serve_metrics_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.phylo import write_phylip

        sim = simulate_dataset(n_taxa=6, n_sites=80, seed=3)
        aln = tmp_path / "aln.phy"
        write_phylip(sim.alignment, aln)
        rc = main(
            [
                "search", str(aln), "--serve-metrics", "0",
                "--radius", "3", "--backend", "reference",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving live metrics at http://127.0.0.1:" in out
        # lifecycle: the server is torn down with the run
        assert obs_server.get_server() is None
        assert not obs_server.ENABLED

    def test_search_with_profile_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.phylo import write_phylip

        sim = simulate_dataset(n_taxa=8, n_sites=400, seed=3)
        aln = tmp_path / "aln.phy"
        write_phylip(sim.alignment, aln)
        folded = tmp_path / "out.folded"
        rc = main(
            [
                "search", str(aln), "--profile", str(folded),
                "--profile-hz", "250", "--radius", "3",
                "--backend", "reference",
            ]
        )
        assert rc == 0
        assert "wrote profile:" in capsys.readouterr().out
        lines = folded.read_text().splitlines()
        assert lines, "profiler collected no samples"
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) >= 0


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_samples_attribute_to_open_span_stack(self):
        obs.enable("prof-test")
        prof = SamplingProfiler(hz=500.0)
        with prof:
            with obs.span("outer"):
                with obs.span("inner"):
                    t0 = time.perf_counter()
                    while time.perf_counter() - t0 < 0.08:
                        sum(range(500))
        assert prof.n_sweeps > 0
        assert prof.n_samples > 0
        folded = prof.folded()
        assert folded
        hit = [k for k in folded if "outer;inner" in k]
        assert hit, f"no sample attributed to the span stack: {folded}"
        # weights are count / hz in microseconds
        assert sum(folded.values()) == pytest.approx(
            prof.n_samples / prof.hz * 1e6
        )

    def test_stack_is_clean_after_spans_close(self):
        obs.enable("prof-test")
        with obs.span("a"):
            assert obs_spans.current_span_stack() == ("a",)
            with obs.span("b"):
                assert obs_spans.current_span_stack() == ("a", "b")
        assert obs_spans.current_span_stack() == ()

    def test_start_stop_cycles_accumulate_until_reset(self):
        prof = SamplingProfiler(hz=400.0)
        prof.start()
        time.sleep(0.03)
        prof.stop()
        first = prof.n_sweeps
        assert first > 0
        assert not prof.running
        prof.start()
        time.sleep(0.03)
        prof.stop()
        assert prof.n_sweeps > first
        prof.reset()
        assert prof.n_sweeps == 0 and not prof.samples

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_py_frames=-1)
