"""Tests for branch/model optimisation, SPR search, and the full driver."""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.phylo import GammaRates, gtr, random_topology, simulate_dataset
from repro.search import (
    SearchConfig,
    empirical_frequencies,
    ml_search,
    optimize_all_branches,
    optimize_alpha,
    optimize_branch,
    optimize_model,
    spr_round,
)


@pytest.fixture(scope="module")
def engine_setup():
    sim = simulate_dataset(n_taxa=8, n_sites=400, seed=31)
    pat = sim.alignment.compress()
    model = gtr(frequencies=empirical_frequencies(pat))
    return sim, pat, model


def fresh_engine(sim, pat, model, alpha=1.0):
    return LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(alpha, 4))


class TestBranchOpt:
    def test_single_branch_improves_lnl(self, engine_setup):
        sim, pat, model = engine_setup
        eng = fresh_engine(sim, pat, model)
        eid = eng.tree.edge_ids[0]
        eng.tree.edge(eid).length = 2.0  # deliberately bad
        before = eng.log_likelihood()
        res = optimize_branch(eng, eid)
        after = eng.log_likelihood()
        assert after >= before
        assert res.length != pytest.approx(2.0)

    def test_optimum_has_zero_gradient(self, engine_setup):
        sim, pat, model = engine_setup
        eng = fresh_engine(sim, pat, model)
        eid = eng.tree.edge_ids[1]
        optimize_branch(eng, eid)
        sumbuf = eng.edge_sum_buffer(eid)
        _, d1, d2 = eng.branch_derivatives(sumbuf, eng.tree.edge(eid).length)
        assert abs(d1) < 1e-4
        assert d2 < 0

    def test_smoothing_monotone(self, engine_setup):
        sim, pat, model = engine_setup
        eng = fresh_engine(sim, pat, model)
        rng = np.random.default_rng(0)
        for e in eng.tree.edges:
            e.length = float(rng.uniform(0.01, 1.0))
        before = eng.log_likelihood()
        after = optimize_all_branches(eng, passes=3)
        assert after > before

    def test_recovers_known_branch_length(self):
        """On abundant data the ML branch length approaches the truth."""
        from repro.phylo import Tree, simulate_alignment

        model = gtr()
        tree = Tree.from_newick("((a:0.1,b:0.1):0.25,(c:0.1,d:0.1):0.25);")
        rng = np.random.default_rng(0)
        sim = simulate_alignment(tree, model, 50_000, rng)
        pat = sim.alignment.compress()
        eng = LikelihoodEngine(pat, tree.copy(), model, GammaRates(1.0, 1))
        optimize_all_branches(eng, passes=4)
        internals = eng.tree.internal_nodes()
        eid = eng.tree.find_edge(*internals)
        assert eng.tree.edge(eid).length == pytest.approx(0.5, abs=0.05)


class TestModelOpt:
    def test_alpha_recovery(self):
        sim = simulate_dataset(n_taxa=8, n_sites=5000, seed=32, alpha=0.4)
        pat = sim.alignment.compress()
        model = gtr(
            np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
            np.array([0.3, 0.2, 0.2, 0.3]),
        )
        eng = LikelihoodEngine(pat, sim.tree.copy(), model, GammaRates(2.0, 4))
        optimize_alpha(eng)
        assert eng.rates_model.alpha == pytest.approx(0.4, abs=0.12)

    def test_model_opt_monotone(self, engine_setup):
        sim, pat, model = engine_setup
        eng = fresh_engine(sim, pat, model, alpha=3.0)
        before = eng.log_likelihood()
        res = optimize_model(eng, max_rounds=2)
        assert res.lnl > before

    def test_empirical_frequencies_sane(self, engine_setup):
        _, pat, _ = engine_setup
        freqs = empirical_frequencies(pat)
        assert freqs.shape == (4,)
        assert freqs.sum() == pytest.approx(1.0)
        assert np.all(freqs > 0)


class TestSpr:
    def test_round_improves_bad_tree(self, engine_setup):
        sim, pat, model = engine_setup
        bad_tree = random_topology(list(pat.taxa), np.random.default_rng(123))
        eng = LikelihoodEngine(pat, bad_tree, model, GammaRates(1.0, 4))
        optimize_all_branches(eng, passes=2)
        stats = spr_round(eng, radius=5)
        assert stats.lnl_after >= stats.lnl_before
        assert stats.moves_tried > 0

    def test_round_on_optimal_tree_accepts_nothing(self, engine_setup):
        sim, pat, model = engine_setup
        eng = fresh_engine(sim, pat, model)
        optimize_all_branches(eng, passes=3)
        stats = spr_round(eng, radius=3, epsilon=0.1)
        # true tree with optimised branches should be (near) SPR-optimal
        assert stats.moves_accepted <= 1


class TestFullSearch:
    def test_recovers_true_topology(self):
        sim = simulate_dataset(n_taxa=8, n_sites=800, seed=33)
        res = ml_search(
            sim.alignment, config=SearchConfig(radii=(4,), max_spr_rounds=4)
        )
        assert res.tree.robinson_foulds(sim.tree) == 0

    def test_beats_starting_tree(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=34)
        res = ml_search(
            sim.alignment, config=SearchConfig(radii=(4,), max_spr_rounds=3)
        )
        start_lnl = res.lnl_trajectory[0][1]
        assert res.lnl > start_lnl

    def test_trajectory_monotone(self):
        sim = simulate_dataset(n_taxa=7, n_sites=300, seed=35)
        res = ml_search(
            sim.alignment, config=SearchConfig(radii=(3,), max_spr_rounds=3)
        )
        values = [v for _, v in res.lnl_trajectory]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))

    def test_counters_populated(self):
        sim = simulate_dataset(n_taxa=6, n_sites=200, seed=36)
        res = ml_search(
            sim.alignment, config=SearchConfig(radii=(3,), max_spr_rounds=2)
        )
        merged = res.counters.merged()
        assert merged["newview"] > 0
        assert merged["evaluate"] > 0
        assert merged["derivative_sum"] > 0
        assert merged["derivative_core"] > merged["derivative_sum"]
        assert res.counters.reductions > 0

    def test_user_starting_tree_respected(self):
        sim = simulate_dataset(n_taxa=6, n_sites=200, seed=37)
        start = sim.tree.copy()
        res = ml_search(
            sim.alignment,
            starting_tree=start,
            config=SearchConfig(radii=(3,), max_spr_rounds=1),
        )
        # the provided tree is copied, not mutated
        assert start.robinson_foulds(sim.tree) == 0
        assert res.lnl < 0
