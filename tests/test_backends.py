"""Backend dispatch-seam tests.

Parity: every registered backend (plus deliberately small-block
configurations that force the chunked code paths) must agree with the
reference NumPy kernels to 1e-10 on randomized CLAs across tip/inner
combinations, Gamma and single-rate shapes, and rescaled inputs.

Shadow: the differential-testing backend must catch a deliberately
perturbed kernel and stay silent on honest ones.

Factory: ``make_engine`` composes backend x memsave x CAT x p_inv in one
place and rejects contradictory combinations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.backends import (
    BackendMismatchError,
    BlockedBackend,
    KernelProfile,
    ReferenceBackend,
    ShadowBackend,
    available_backends,
    get_backend,
    make_engine,
)
from repro.core.cat import CatLikelihoodEngine
from repro.core.engine import LikelihoodEngine
from repro.core.invariant import InvariantSitesEngine
from repro.core.memsave import MemorySavingEngine
from repro.phylo import CatRates, GammaRates, gtr, simulate_dataset

N_STATES = 4
N_CODES = 16
ATOL = 1e-10

#: (label, zero-arg factory) for every backend whose outputs must match
#: the reference kernels.  The small-block variants force the chunked
#: loops even on test-sized inputs (the registry default of 2048 sites
#: would otherwise fall through to the whole-array path).
PARITY_BACKENDS = [
    (info.name, info.factory)
    for info in available_backends()
    if info.name != "reference"
] + [
    ("blocked[17]", lambda: BlockedBackend(block_sites=17)),
    ("shadow[blocked17]", lambda: ShadowBackend(
        primary=BlockedBackend(block_sites=17))),
]
PARITY_IDS = [label for label, _ in PARITY_BACKENDS]
PARITY_FACTORIES = [factory for _, factory in PARITY_BACKENDS]


def _random_inputs(seed: int, p: int, c: int, rescaled: bool) -> dict:
    """Randomized kernel operands of one shape family."""
    rng = np.random.default_rng(seed)
    tiny = 1e-140 if rescaled else 1.0  # products cross SCALE_THRESHOLD
    return {
        "u_inv": rng.normal(size=(N_STATES, N_STATES)),
        "a1": rng.uniform(0.05, 1.0, size=(c, N_STATES, N_STATES)),
        "a2": rng.uniform(0.05, 1.0, size=(c, N_STATES, N_STATES)),
        "z1": rng.uniform(0.1, 1.0, size=(p, c, N_STATES)) * tiny,
        "z2": rng.uniform(0.1, 1.0, size=(p, c, N_STATES)) * tiny,
        "scale1": rng.integers(0, 3, size=p),
        "scale2": rng.integers(0, 3, size=p),
        "lookup1": rng.uniform(0.1, 1.0, size=(c, N_CODES, N_STATES)),
        "lookup2": rng.uniform(0.1, 1.0, size=(c, N_CODES, N_STATES)),
        "codes1": rng.integers(0, N_CODES, size=p),
        "codes2": rng.integers(0, N_CODES, size=p),
        "exps": rng.uniform(0.1, 1.0, size=(c, N_STATES)),
        "rate_weights": np.full(c, 1.0 / c),
        "pattern_weights": rng.integers(1, 5, size=p).astype(float),
        "eigenvalues": np.concatenate(
            [[0.0], -rng.uniform(0.1, 2.0, size=N_STATES - 1)]
        ),
        "rates": rng.uniform(0.2, 3.0, size=c),
    }


shape_strategy = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),  # rng seed
    st.integers(min_value=1, max_value=97),         # patterns
    st.sampled_from([1, 4]),                        # rate categories
    st.booleans(),                                  # rescaled CLAs
)


@pytest.mark.parametrize("factory", PARITY_FACTORIES, ids=PARITY_IDS)
class TestKernelParity:
    """All backends reproduce the reference kernels to 1e-10."""

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy)
    def test_newview_tip_tip(self, factory, shape):
        seed, p, c, _ = shape
        d = _random_inputs(seed, p, c, rescaled=False)
        z_ref, s_ref = kernels.newview_tip_tip(
            d["u_inv"], d["lookup1"], d["codes1"], d["lookup2"], d["codes2"]
        )
        z, s = factory().newview_tip_tip(
            d["u_inv"], d["lookup1"], d["codes1"], d["lookup2"], d["codes2"]
        )
        np.testing.assert_allclose(z, z_ref, rtol=0.0, atol=ATOL)
        np.testing.assert_array_equal(s, s_ref)

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy)
    def test_newview_tip_inner(self, factory, shape):
        seed, p, c, rescaled = shape
        d = _random_inputs(seed, p, c, rescaled)
        z_ref, s_ref = kernels.newview_tip_inner(
            d["u_inv"], d["lookup1"], d["codes1"],
            d["a2"], d["z2"], d["scale2"],
        )
        z, s = factory().newview_tip_inner(
            d["u_inv"], d["lookup1"], d["codes1"],
            d["a2"], d["z2"], d["scale2"],
        )
        np.testing.assert_allclose(z, z_ref, rtol=0.0, atol=ATOL)
        np.testing.assert_array_equal(s, s_ref)

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy)
    def test_newview_inner_inner(self, factory, shape):
        seed, p, c, rescaled = shape
        d = _random_inputs(seed, p, c, rescaled)
        z_ref, s_ref = kernels.newview_inner_inner(
            d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
            d["scale1"], d["scale2"],
        )
        z, s = factory().newview_inner_inner(
            d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
            d["scale1"], d["scale2"],
        )
        if rescaled:  # the tiny inputs must actually trip the rescaler
            assert np.any(s_ref > d["scale1"] + d["scale2"])
        np.testing.assert_allclose(z, z_ref, rtol=0.0, atol=ATOL)
        np.testing.assert_array_equal(s, s_ref)

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy)
    def test_evaluate(self, factory, shape):
        seed, p, c, _ = shape
        d = _random_inputs(seed, p, c, rescaled=False)
        scale = d["scale1"] + d["scale2"]
        site_ref = kernels.site_log_likelihoods(
            d["z1"], d["z2"], d["exps"], d["rate_weights"], scale
        )
        lnl_ref = kernels.evaluate_edge(
            d["z1"], d["z2"], d["exps"], d["rate_weights"],
            d["pattern_weights"], scale,
        )
        backend = factory()
        site = backend.site_log_likelihoods(
            d["z1"], d["z2"], d["exps"], d["rate_weights"], scale
        )
        lnl = backend.evaluate_edge(
            d["z1"], d["z2"], d["exps"], d["rate_weights"],
            d["pattern_weights"], scale,
        )
        np.testing.assert_allclose(site, site_ref, rtol=0.0, atol=ATOL)
        assert lnl == pytest.approx(lnl_ref, rel=1e-12, abs=ATOL)

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy)
    def test_evaluate_tip_root_broadcast(self, factory, shape):
        """Root sides may be (p, 1, k) tip views against (c, k) exps."""
        seed, p, _, _ = shape
        d = _random_inputs(seed, p, 4, rescaled=False)
        z1 = d["z1"][:, :1, :]
        z2 = d["z2"][:, :1, :]
        scale = np.zeros(p, dtype=np.int64)
        lnl_ref = kernels.evaluate_edge(
            z1, z2, d["exps"], d["rate_weights"], d["pattern_weights"], scale
        )
        lnl = factory().evaluate_edge(
            z1, z2, d["exps"], d["rate_weights"], d["pattern_weights"], scale
        )
        assert lnl == pytest.approx(lnl_ref, rel=1e-12, abs=ATOL)

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy)
    def test_derivative_sum(self, factory, shape):
        seed, p, c, rescaled = shape
        d = _random_inputs(seed, p, c, rescaled)
        np.testing.assert_allclose(
            factory().derivative_sum(d["z1"], d["z2"]),
            kernels.derivative_sum(d["z1"], d["z2"]),
            rtol=0.0,
            atol=ATOL,
        )

    @settings(max_examples=20, deadline=None)
    @given(shape=shape_strategy, t=st.floats(min_value=1e-6, max_value=2.0))
    def test_derivative_core(self, factory, shape, t):
        seed, p, c, _ = shape
        d = _random_inputs(seed, p, c, rescaled=False)
        sumbuf = d["z1"] * d["z2"]
        ref = kernels.derivative_core(
            sumbuf, d["eigenvalues"], d["rates"], d["rate_weights"],
            t, d["pattern_weights"],
        )
        got = factory().derivative_core(
            sumbuf, d["eigenvalues"], d["rates"], d["rate_weights"],
            t, d["pattern_weights"],
        )
        for r, g in zip(ref, got):
            assert g == pytest.approx(r, rel=1e-10, abs=ATOL)


class TestEngineParity:
    """Whole-engine agreement across backends on a real dataset."""

    @pytest.fixture(scope="class")
    def sim(self):
        return simulate_dataset(n_taxa=10, n_sites=500, seed=77)

    def _engine(self, sim, backend):
        return make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(alpha=0.6), backend=backend,
        )

    def test_log_likelihood_all_backends(self, sim):
        ref = self._engine(sim, "reference").log_likelihood()
        for info in available_backends():
            lnl = self._engine(sim, info.name).log_likelihood()
            assert lnl == pytest.approx(ref, abs=1e-9), info.name
        # forced chunking too
        lnl = self._engine(sim, BlockedBackend(block_sites=13)).log_likelihood()
        assert lnl == pytest.approx(ref, abs=1e-9)

    def test_branch_derivatives_all_backends(self, sim):
        eng_ref = self._engine(sim, "reference")
        eid = eng_ref.tree.edges[0].id
        sb = eng_ref.edge_sum_buffer(eid)
        ref = eng_ref.branch_derivatives(sb, 0.07)
        for info in available_backends():
            eng = self._engine(sim, info.name)
            got = eng.branch_derivatives(eng.edge_sum_buffer(eid), 0.07)
            for r, g in zip(ref, got):
                assert g == pytest.approx(r, rel=1e-9), info.name

    def test_site_log_likelihoods_match(self, sim):
        ref = self._engine(sim, "reference").site_log_likelihoods()
        got = self._engine(sim, BlockedBackend(block_sites=13)).site_log_likelihoods()
        np.testing.assert_allclose(got, ref, rtol=0.0, atol=1e-10)


class _PerturbedNewview(ReferenceBackend):
    """Reference kernels with a deliberately wrong inner-inner newview."""

    name = "perturbed"
    description = "reference with a 1e-6 error injected into newview"

    def newview_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        z, s = super().newview_inner_inner(
            u_inv, a1, a2, z1, z2, scale1, scale2
        )
        return z + 1e-6, s


class _PerturbedDerivative(ReferenceBackend):
    name = "perturbed-deriv"
    description = "reference with a biased derivativeCore"

    def derivative_core(self, sumbuf, eigenvalues, rates, rate_weights, t,
                        pattern_weights):
        lnl, d1, d2 = super().derivative_core(
            sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        return lnl, d1 * (1.0 + 1e-4), d2


class TestShadowBackend:
    def test_silent_on_honest_backends(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=5)
        shadow = ShadowBackend(primary=BlockedBackend(block_sites=19))
        engine = self._run(sim, shadow)
        ref = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(alpha=0.9), backend="reference",
        ).log_likelihood()
        assert engine == pytest.approx(ref, abs=1e-9)
        assert shadow.checks > 0

    @staticmethod
    def _run(sim, backend):
        engine = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(alpha=0.9), backend=backend,
        )
        return engine.log_likelihood()

    def test_catches_perturbed_newview(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=5)
        shadow = ShadowBackend(primary=_PerturbedNewview())
        with pytest.raises(BackendMismatchError, match="newview"):
            self._run(sim, shadow)

    def test_catches_perturbed_derivative(self):
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=5)
        shadow = ShadowBackend(primary=_PerturbedDerivative())
        engine = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(alpha=0.9), backend=shadow,
        )
        eid = engine.tree.edges[0].id
        sb = engine.edge_sum_buffer(eid)
        with pytest.raises(BackendMismatchError, match="derivative"):
            engine.branch_derivatives(sb, 0.1)

    def test_kernel_level_mismatch(self):
        d = _random_inputs(0, 31, 4, rescaled=False)
        shadow = ShadowBackend(primary=_PerturbedNewview())
        with pytest.raises(BackendMismatchError):
            shadow.newview_inner_inner(
                d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
                d["scale1"], d["scale2"],
            )


class TestRegistryAndFactory:
    def test_registry_names(self):
        names = [info.name for info in available_backends()]
        assert names[:3] == ["reference", "blocked", "shadow"]
        assert all(info.description for info in available_backends())

    def test_get_backend_unknown(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("simd-but-not-really")

    def test_get_backend_fresh_instances(self):
        assert get_backend("blocked") is not get_backend("blocked")

    def test_get_backend_instance_passthrough(self):
        inst = BlockedBackend()
        assert get_backend(inst) is inst

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "blocked")
        assert isinstance(get_backend(None), BlockedBackend)
        monkeypatch.delenv("REPRO_BACKEND")
        assert isinstance(get_backend(None), ReferenceBackend)

    def test_make_engine_flavours(self):
        sim = simulate_dataset(n_taxa=6, n_sites=120, seed=11)
        patterns = sim.alignment.compress()
        base = make_engine(patterns, sim.tree.copy(), gtr(), GammaRates(0.8))
        assert type(base) is LikelihoodEngine
        mem = make_engine(
            patterns, sim.tree.copy(), gtr(), GammaRates(0.8), max_resident=4
        )
        assert isinstance(mem, MemorySavingEngine)
        inv = make_engine(
            patterns, sim.tree.copy(), gtr(), GammaRates(0.8), p_inv=0.1
        )
        assert isinstance(inv, InvariantSitesEngine)
        cat = CatRates.from_gamma(
            0.8, patterns.n_patterns, 4, np.random.default_rng(0),
            weights=patterns.weights,
        )
        cat_engine = make_engine(
            patterns, sim.tree.copy(), gtr(), cat=cat, backend="blocked"
        )
        assert isinstance(cat_engine, CatLikelihoodEngine)
        assert isinstance(cat_engine.backend, BlockedBackend)
        # CAT parity across backends, while we have the pieces in hand
        ref_cat = make_engine(patterns, sim.tree.copy(), gtr(), cat=cat)
        assert cat_engine.log_likelihood() == pytest.approx(
            ref_cat.log_likelihood(), abs=1e-9
        )

    def test_make_engine_invalid_combos(self):
        sim = simulate_dataset(n_taxa=6, n_sites=120, seed=11)
        patterns = sim.alignment.compress()
        cat = CatRates.from_gamma(
            0.8, patterns.n_patterns, 4, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="cat"):
            make_engine(patterns, sim.tree.copy(), gtr(), cat=cat, p_inv=0.1)
        with pytest.raises(ValueError, match="cat"):
            make_engine(
                patterns, sim.tree.copy(), gtr(), cat=cat, max_resident=4
            )
        with pytest.raises(ValueError, match="rates"):
            make_engine(
                patterns, sim.tree.copy(), gtr(), GammaRates(0.8), cat=cat
            )
        with pytest.raises(ValueError, match="p_inv"):
            make_engine(
                patterns, sim.tree.copy(), gtr(), GammaRates(0.8),
                p_inv=0.1, max_resident=4,
            )


class TestProfiles:
    def test_profile_records_timed_kernels(self):
        sim = simulate_dataset(n_taxa=8, n_sites=250, seed=21)
        engine = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(0.8), backend="blocked",
        )
        engine.log_likelihood()
        eid = engine.tree.edges[0].id
        engine.branch_derivatives(engine.edge_sum_buffer(eid), 0.1)
        profile = engine.profile
        assert isinstance(profile, KernelProfile)
        merged = profile.merged()
        assert merged["newview"] > 0
        assert merged["evaluate"] == 1
        assert merged["derivative_sum"] == 1
        assert merged["derivative_core"] == 1
        seconds = profile.merged_seconds()
        assert all(seconds[k] > 0.0 for k in merged)
        nbytes = profile.merged_bytes()
        assert all(nbytes[k] > 0 for k in merged)

    def test_profile_feeds_trace_and_costmodel(self):
        from repro.perf import measured_costs, trace_from_profile
        from repro.perf.trace import KernelTrace

        sim = simulate_dataset(n_taxa=8, n_sites=250, seed=21)
        engine = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            GammaRates(0.8), backend="reference",
        )
        engine.log_likelihood()
        eid = engine.tree.edges[0].id
        engine.branch_derivatives(engine.edge_sum_buffer(eid), 0.1)
        trace = trace_from_profile(
            engine.profile, n_taxa=8,
            traced_sites=engine.patterns.n_patterns,
        )
        assert trace.measured_seconds is not None
        roundtrip = KernelTrace.from_json(trace.to_json())
        assert roundtrip == trace
        costs = measured_costs(engine.profile)
        assert costs["newview"].seconds_per_site > 0.0
        assert costs["newview"].effective_bandwidth_gbs > 0.0
        # trace route must agree with the profile route
        via_trace = measured_costs(trace)
        assert via_trace["evaluate"].calls == costs["evaluate"].calls

    def test_unmeasured_trace_rejected(self):
        from repro.perf import DEFAULT_TRACE, measured_costs

        with pytest.raises(ValueError, match="no measurements"):
            measured_costs(DEFAULT_TRACE)

    def test_shared_backend_aggregates_profile(self):
        sim = simulate_dataset(n_taxa=6, n_sites=150, seed=33)
        shared = BlockedBackend()
        for seed in (1, 2):
            make_engine(
                sim.alignment.compress(), sim.tree.copy(), gtr(),
                GammaRates(0.8), backend=shared,
            ).log_likelihood()
        assert shared.profile.merged()["evaluate"] == 2
