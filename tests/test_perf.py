"""Tests for platform specs, cost model, traces, and energy model."""

import numpy as np
import pytest

from repro.perf import (
    BASELINE,
    CostModel,
    DEFAULT_TRACE,
    KernelTrace,
    NVIDIA_K20,
    PAPER_FIGURE3,
    TABLE1_PLATFORMS,
    XEON_E5_2630_2S,
    XEON_E5_2680_2S,
    XEON_PHI_5110P_1S,
    XEON_PHI_5110P_2S,
    energy_wh,
    figure3_residuals,
    measure_kernel_cycles,
    relative_energy_savings,
)
from repro.perf.costmodel import KERNELS


class TestPlatformSpecs:
    def test_table1_values_match_paper(self):
        """Spot-check Table I transcription."""
        assert XEON_E5_2680_2S.peak_dp_gflops == 346
        assert XEON_E5_2680_2S.cores == 16
        assert XEON_E5_2680_2S.memory_bw_gbs == pytest.approx(102.4)
        assert XEON_PHI_5110P_1S.peak_dp_gflops == 1074
        assert XEON_PHI_5110P_1S.cores == 60
        assert XEON_PHI_5110P_1S.memory_gb == 8
        assert XEON_PHI_5110P_2S.max_tdp_w == 450

    def test_baseline_is_e5_2680(self):
        assert BASELINE is XEON_E5_2680_2S

    def test_derived_flops_per_cycle(self):
        # 8 DP flops/cycle for AVX Sandy Bridge (4 lanes x mul+add)
        assert XEON_E5_2680_2S.flops_per_cycle_per_core == pytest.approx(8.0, rel=0.01)
        # 16 DP flops/cycle for MIC (8 lanes x FMA)
        assert XEON_PHI_5110P_1S.flops_per_cycle_per_core == pytest.approx(17.0, rel=0.02)

    def test_k20_is_reference_only(self):
        assert NVIDIA_K20.isa is None
        from repro.mic.device import Device

        with pytest.raises(ValueError, match="reference-only"):
            Device(NVIDIA_K20).make_vm()

    def test_all_rows_present(self):
        assert len(TABLE1_PLATFORMS) == 5


class TestKernelMeasurement:
    def test_measurement_cached(self):
        a = measure_kernel_cycles("mic512")
        b = measure_kernel_cycles("mic512")
        assert a is b

    def test_all_kernels_measured(self):
        meas = measure_kernel_cycles("avx256")
        assert set(meas) == set(KERNELS)
        for m in meas.values():
            assert m.issue_cycles_per_site > 0
            assert m.dram_bytes_per_site > 0

    def test_derivative_sum_traffic_is_three_blocks(self):
        """2 reads + 1 NT write of 128B per site on the MIC."""
        m = measure_kernel_cycles("mic512")["derivative_sum"]
        assert m.dram_bytes_per_site == pytest.approx(384, rel=0.1)


class TestCostModel:
    def test_kernel_time_scales_with_sites(self):
        cm = CostModel(XEON_E5_2680_2S)
        t1 = cm.kernel_time("newview", 10_000)
        t2 = cm.kernel_time("newview", 1_000_000)
        assert 50 < t2 / t1 < 150

    def test_serial_overhead_floor(self):
        cm = CostModel(XEON_PHI_5110P_1S)
        tiny = cm.kernel_time("newview", 1)
        assert tiny >= cm.serial_overhead_s("newview")

    def test_unknown_kernel_rejected(self):
        cm = CostModel(XEON_E5_2680_2S)
        with pytest.raises(KeyError):
            cm.kernel_time("bogus", 100)

    def test_figure3_calibration_within_5_percent(self):
        for report in figure3_residuals():
            assert abs(report.relative_error) < 0.05, report

    def test_derivative_sum_best_speedup(self):
        """Figure 3's headline: the streaming kernel speeds up most."""
        cpu = CostModel(XEON_E5_2680_2S)
        mic = CostModel(XEON_PHI_5110P_1S)
        speedups = {
            k: mic.kernel_speedup_vs(cpu, k, 1_000_000) for k in KERNELS
        }
        assert max(speedups, key=speedups.get) == "derivative_sum"
        assert speedups["derivative_sum"] > 2.5
        for k in ("newview", "evaluate", "derivative_core"):
            assert speedups[k] <= 2.1


class TestTrace:
    def test_default_trace_valid(self):
        assert DEFAULT_TRACE.n_taxa == 15
        assert DEFAULT_TRACE.total_calls > 10_000
        assert DEFAULT_TRACE.reductions > 0

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        DEFAULT_TRACE.save(path)
        loaded = KernelTrace.load(path)
        assert loaded == DEFAULT_TRACE

    def test_missing_kernel_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            KernelTrace(15, 100, {"newview": 1}, 1)

    def test_negative_counts_rejected(self):
        calls = dict(DEFAULT_TRACE.calls)
        calls["evaluate"] = -1
        with pytest.raises(ValueError, match="negative"):
            KernelTrace(15, 100, calls, 1)


class TestEnergy:
    def test_paper_formula(self):
        # E[Wh] = TDP * t / 3600
        assert energy_wh(XEON_E5_2680_2S, 3600.0) == pytest.approx(260.0)

    def test_relative_savings_identity(self):
        assert relative_energy_savings(
            XEON_E5_2680_2S, 100.0, 100.0
        ) == pytest.approx(1.0)

    def test_paper_figure5_extremes(self):
        """From the paper's own Table III numbers: 1 MIC saves ~2.3x at 4M."""
        savings = relative_energy_savings(XEON_PHI_5110P_1S, 1228.0, 2494.0)
        assert savings == pytest.approx(2.35, abs=0.1)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            energy_wh(XEON_E5_2680_2S, -1.0)
