"""One-traversal all-branch gradients and the gradient-based optimizers.

Five angles:

* property-based (hypothesis): ``all_branch_gradients`` must match a
  Richardson-extrapolated central finite difference of the
  log-likelihood AND the per-branch ``derivativeCore`` first derivative
  to 1e-8 on every backend;
* bit-parity: every engine flavour (CAT, +I, memory-saving,
  partitioned) and every parallel substrate (fork-join at 1/2/4
  workers, distributed ranks) must agree with the serial sweep exactly
  (delta == 0.0 — the terms-mode lane gather reduces in fixed pattern
  order);
* kernel budget: one post-order + one pre-order traversal, counted —
  ``2N - 4`` pre-order partials and ``2N - 3`` edge gradients, zero
  per-branch re-rooting;
* optimizer parity: the gradient smoother must reach the Newton sweep's
  final lnL within 1e-6; the proximal optimizer must trade lnL for
  exact sparsity; the per-branch memo must drive a converged smoothing
  pass to zero ``derivativeSum`` calls;
* plumbing: method validation, checkpoint round-trip of the chosen
  method, and the observability counters/spans of the new code paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LikelihoodEngine
from repro.core.cat import CatLikelihoodEngine
from repro.core.invariant import InvariantSitesEngine
from repro.core.memsave import MemorySavingEngine
from repro.core.partitioned import Partition, PartitionedEngine
from repro.core.traversal import KernelKind
from repro.parallel.distributed import DistributedEngine
from repro.parallel.forkjoin import ForkJoinEngine
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.phylo.rates import CatRates, discrete_gamma_rates
from repro.search import optimize_all_branches, proximal_smooth
from repro.search.branch_opt import BRANCH_OPT_METHODS, all_branch_gradients

MODEL_ARGS = (
    np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
    np.array([0.3, 0.2, 0.2, 0.3]),
)


def make_parts(seed: int, n_taxa: int = 6, n_sites: int = 150):
    sim = simulate_dataset(n_taxa=n_taxa, n_sites=n_sites, seed=seed)
    return sim.alignment.compress(), sim.tree.copy()


def make_engine(seed: int, backend: str = "blocked", **kw) -> LikelihoodEngine:
    patterns, tree = make_parts(seed, **kw)
    return LikelihoodEngine(
        patterns, tree, gtr(*MODEL_ARGS), GammaRates(0.8, 4), backend=backend
    )


def per_branch_reference(engine) -> dict[int, tuple[float, float]]:
    """The oracle: re-rooted ``derivativeSum`` + ``derivativeCore``."""
    out = {}
    for eid in sorted(engine.tree.edge_ids):
        sumbuf = engine.edge_sum_buffer(eid)
        _, d1, d2 = engine.branch_derivatives(
            sumbuf, engine.tree.edge(eid).length
        )
        out[eid] = (d1, d2)
    return out


def richardson_fd(engine, eid: int, h: float = 3e-4) -> float:
    """O(h^4) central difference of lnL w.r.t. one branch length.

    The truncation term scales like ``d5 ~ 1/t^5``, so the step shrinks
    with the branch length (and callers skip near-minimum branches).
    """
    edge = engine.tree.edge(eid)
    t0 = edge.length
    h = min(h, t0 / 8.0)

    def lnl_at(t: float) -> float:
        edge.length = t
        return engine.log_likelihood()

    def central(step: float) -> float:
        return (lnl_at(t0 + step) - lnl_at(t0 - step)) / (2.0 * step)

    try:
        d_h, d_h2 = central(h), central(h / 2.0)
    finally:
        edge.length = t0
        engine.log_likelihood()  # restore validity at the original length
    return (4.0 * d_h2 - d_h) / 3.0


# ----------------------------------------------------------------------
# correctness: FD and per-branch parity
# ----------------------------------------------------------------------
class TestGradientCorrectness:
    @given(
        seed=st.integers(0, 2**31),
        backend=st.sampled_from(["reference", "blocked", "shadow"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_matches_fd_and_derivative_core(self, seed, backend):
        engine = make_engine(seed % 1000, backend=backend, n_sites=120)
        grads = engine.all_branch_gradients()
        oracle = per_branch_reference(engine)
        assert set(grads) == set(engine.tree.edge_ids)
        for eid, (d1, d2) in grads.items():
            # exact agreement with the per-branch derivativeCore pair
            assert abs(d1 - oracle[eid][0]) <= 1e-8 * max(1.0, abs(d1))
            assert abs(d2 - oracle[eid][1]) <= 1e-8 * max(1.0, abs(d2))
        # FD on a few branches (each costs four full lnL evaluations);
        # near-minimum branches are skipped — their higher derivatives
        # blow up like 1/t^5 and no finite step is accurate there.
        rng = np.random.default_rng(seed)
        candidates = [
            e for e in sorted(grads)
            if engine.tree.edge(e).length >= 5e-3
        ]
        sample = rng.choice(
            candidates, size=min(3, len(candidates)), replace=False
        )
        for eid in sample:
            fd = richardson_fd(engine, int(eid))
            d1 = grads[int(eid)][0]
            # 5e-8, not 1e-8: the FD itself carries ~2e-8 roundoff
            # (eps * |lnL| / h with lnL in the thousands at h ~ 3e-4),
            # so a tighter bound flakes on the FD, not the gradient —
            # the exact oracle parity above is the correctness gate.
            assert abs(fd - d1) <= 5e-8 * max(1.0, abs(d1), abs(fd))

    @pytest.mark.parametrize("backend", ["reference", "blocked", "shadow"])
    def test_backends_bit_identical_to_per_branch(self, backend):
        engine = make_engine(5, backend=backend)
        grads = engine.all_branch_gradients()
        for eid, pair in per_branch_reference(engine).items():
            assert grads[eid] == pair  # same kernels, same order: exact

    def test_engine_flavours_match_per_branch(self):
        patterns, tree = make_parts(11, n_taxa=8, n_sites=200)
        model = gtr(*MODEL_ARGS)
        rates = GammaRates(0.8, 4)
        cr = discrete_gamma_rates(0.8, 4)
        sc = np.arange(patterns.n_patterns) % 4
        cat = CatRates(
            category_rates=cr
            / float(np.average(cr[sc], weights=patterns.weights)),
            site_categories=sc,
        )
        flavours = [
            MemorySavingEngine(
                patterns, tree.copy(), model, rates,
                backend="blocked", max_resident=6,
            ),
            CatLikelihoodEngine(patterns, tree.copy(), model, cat),
            InvariantSitesEngine(
                patterns, tree.copy(), model, rates, p_inv=0.2
            ),
            PartitionedEngine(
                [
                    Partition("a", patterns, model, rates),
                    Partition("b", patterns, gtr(), GammaRates(1.1, 4)),
                ],
                tree.copy(),
            ),
        ]
        for engine in flavours:
            grads = engine.all_branch_gradients()
            oracle = per_branch_reference(engine)
            for eid, (d1, d2) in grads.items():
                assert abs(d1 - oracle[eid][0]) <= 1e-8 * max(1.0, abs(d1))
                assert abs(d2 - oracle[eid][1]) <= 1e-8 * max(1.0, abs(d2))


# ----------------------------------------------------------------------
# bit-parity: serial vs parallel substrates
# ----------------------------------------------------------------------
class TestParallelBitParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_forkjoin_simulated_exact(self, n_workers):
        patterns, tree = make_parts(13, n_taxa=8, n_sites=220)
        model = gtr(*MODEL_ARGS)
        rates = GammaRates(0.8, 4)
        serial = LikelihoodEngine(
            patterns, tree.copy(), model, rates, backend="blocked"
        )
        want = serial.all_branch_gradients()
        fj = ForkJoinEngine(
            patterns, tree.copy(), model, rates,
            n_threads=n_workers, backend="blocked",
        )
        got = fj.all_branch_gradients()
        assert set(got) == set(want)
        delta = max(
            abs(a - b) for e in want for a, b in zip(got[e], want[e])
        )
        assert delta == 0.0

    def test_distributed_simulated_exact_one_allreduce(self):
        patterns, tree = make_parts(13, n_taxa=8, n_sites=220)
        model = gtr(*MODEL_ARGS)
        rates = GammaRates(0.8, 4)
        serial = LikelihoodEngine(
            patterns, tree.copy(), model, rates, backend="blocked"
        )
        want = serial.all_branch_gradients()
        de = DistributedEngine(
            patterns, tree.copy(), model, rates, n_ranks=3, backend="blocked"
        )
        de.log_likelihood()
        boundaries0 = de.wave_boundaries
        calls0 = de.mpi.allreduce_calls
        got = de.all_branch_gradients()
        delta = max(
            abs(a - b) for e in want for a, b in zip(got[e], want[e])
        )
        assert delta == 0.0
        # ExaML's O(1)-collectives discipline: the whole gradient sweep
        # costs one AllReduce, while every up-wave is a counted boundary.
        assert de.mpi.allreduce_calls == calls0 + 1
        assert de.wave_boundaries > boundaries0


# ----------------------------------------------------------------------
# kernel budget: O(N), no per-branch re-traversal
# ----------------------------------------------------------------------
class TestKernelBudget:
    def test_one_traversal_call_counts(self):
        n_taxa = 10
        engine = make_engine(7, n_taxa=n_taxa, n_sites=100)
        engine.log_likelihood()  # post-order CLAs valid
        engine.reset_profile()
        grads = engine.all_branch_gradients()
        n_branches = 2 * n_taxa - 3
        assert len(grads) == n_branches
        merged = engine.counters.merged()
        assert merged["newview"] == 0  # down-sweep reused valid CLAs
        assert merged["preorder"] == 2 * n_taxa - 4
        assert merged["edge_gradient"] == n_branches
        # the old path's kernels never fire: no re-rooted derivativeSum
        assert merged["derivative_sum"] == 0
        assert merged["derivative_core"] == 0

    def test_cold_engine_adds_one_postorder_sweep(self):
        n_taxa = 10
        engine = make_engine(7, n_taxa=n_taxa, n_sites=100)
        engine.reset_profile()
        engine.all_branch_gradients()
        merged = engine.counters.merged()
        assert merged["newview"] == n_taxa - 2  # exactly one down-sweep
        assert merged["preorder"] == 2 * n_taxa - 4
        assert merged["edge_gradient"] == 2 * n_taxa - 3


# ----------------------------------------------------------------------
# optimizers
# ----------------------------------------------------------------------
class TestGradientSmoother:
    @pytest.mark.parametrize(
        "seed,n_taxa,n_sites",
        [(11, 12, 400), (5, 8, 250), (23, 16, 600)],
    )
    def test_matches_newton_final_lnl(self, seed, n_taxa, n_sites):
        patterns, tree = make_parts(seed, n_taxa=n_taxa, n_sites=n_sites)
        model = gtr(*MODEL_ARGS)
        rates = GammaRates(0.8, 4)
        newton = LikelihoodEngine(
            patterns, tree.copy(), model, rates, backend="blocked"
        )
        lnl_newton = optimize_all_branches(
            newton, passes=16, improvement_epsilon=1e-8, method="newton"
        )
        grad = LikelihoodEngine(
            patterns, tree.copy(), model, rates, backend="blocked"
        )
        lnl_grad = optimize_all_branches(
            grad, passes=16, improvement_epsilon=1e-8, method="gradient"
        )
        assert abs(lnl_grad - lnl_newton) <= 1e-6

    def test_rejects_unknown_method(self):
        engine = make_engine(3)
        with pytest.raises(ValueError, match="method"):
            optimize_all_branches(engine, method="bogus")
        assert BRANCH_OPT_METHODS == ("newton", "gradient", "prox")

    def test_search_entry_point_delegates(self):
        engine = make_engine(3)
        assert all_branch_gradients(engine) == engine.all_branch_gradients()


class TestProximalGradient:
    def test_lam_zero_improves_lnl(self):
        engine = make_engine(9)
        lnl0 = engine.log_likelihood()
        result = proximal_smooth(engine, lam=0.0, max_sweeps=24)
        assert result.lnl >= lnl0
        assert result.objective == result.lnl  # no penalty term
        assert result.sweeps >= 1

    def test_l1_penalty_produces_exact_sparsity(self):
        from repro.phylo import random_topology
        from repro.phylo.simulate import simulate_alignment
        from repro.phylo.tree import MIN_BRANCH_LENGTH

        # a tree with two near-zero internal branches: branches the
        # data cannot resolve, the near-multifurcation detector's prey
        rng = np.random.default_rng(3)
        true_tree = random_topology([f"t{i}" for i in range(8)], rng)
        internal = [
            e for e in true_tree.edge_ids
            if not true_tree.is_leaf(true_tree.edge(e).u)
            and not true_tree.is_leaf(true_tree.edge(e).v)
        ]
        for e in internal[:2]:
            true_tree.edge(e).length = 0.0005
        model = gtr(*MODEL_ARGS)
        sim = simulate_alignment(
            true_tree.copy(), model, 200, rng, gamma=GammaRates(0.8, 4)
        )
        patterns = sim.alignment.compress()

        def run(lam: float):
            engine = LikelihoodEngine(
                patterns, true_tree.copy(), model, GammaRates(0.8, 4),
                backend="blocked",
            )
            result = proximal_smooth(engine, lam=lam, max_sweeps=48)
            total = sum(
                engine.tree.edge(i).length for i in engine.tree.edge_ids
            )
            pinned = sum(
                1 for i in engine.tree.edge_ids
                if engine.tree.edge(i).length <= MIN_BRANCH_LENGTH
            )
            return result, total, pinned

        free, len_free, _ = run(0.0)
        heavy, len_heavy, pinned = run(50.0)
        # the penalty pins unresolved branches *exactly* at the minimum
        # (reported as sparsity), shrinks the tree, and costs likelihood
        assert heavy.sparsity >= 1
        assert heavy.sparsity == pinned
        assert len_heavy < len_free
        assert heavy.lnl <= free.lnl + 1e-9
        assert heavy.lam == 50.0
        assert heavy.objective == pytest.approx(
            heavy.lnl - 50.0 * len_heavy
        )

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError, match="lam"):
            proximal_smooth(make_engine(3), lam=-1.0)


class TestBranchMemoRegression:
    def test_converged_pass_recomputes_nothing(self):
        """A smoothing pass at the fixpoint must skip every sum buffer.

        Regression: ``optimize_all_branches`` used to rebuild the sum
        buffer for branches whose length and endpoint CLAs had not
        changed since the previous pass.  With the signature memo, once
        repeated single passes stop moving any branch length, a further
        pass must cost zero ``derivativeSum`` calls.
        """
        engine = make_engine(21, n_taxa=6, n_sites=150)

        def sum_calls() -> int:
            return engine.counters.calls.get(KernelKind.DERIVATIVE_SUM, 0)

        reached = False
        for _ in range(60):
            before = sum_calls()
            optimize_all_branches(
                engine, passes=1, improvement_epsilon=0.0
            )
            if sum_calls() == before:
                reached = True
                break
        assert reached, "smoothing never reached its fixpoint"
        # and it stays free: further passes skip every branch
        before = sum_calls()
        optimize_all_branches(engine, passes=3, improvement_epsilon=0.0)
        assert sum_calls() == before


# ----------------------------------------------------------------------
# plumbing: checkpoints and observability
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_checkpoint_round_trips_method(self, tmp_path):
        from repro.search.checkpoint import (
            load_checkpoint,
            save_checkpoint,
        )

        engine = make_engine(3)
        path = tmp_path / "ck.json"
        save_checkpoint(
            engine, path, stage="model_opt", step=4,
            branch_opt_method="gradient",
        )
        loaded = load_checkpoint(path)
        assert loaded.branch_opt_method == "gradient"

    def test_v1_checkpoint_defaults_to_newton(self, tmp_path):
        import json

        from repro.search.checkpoint import load_checkpoint, save_checkpoint

        engine = make_engine(3)
        path = tmp_path / "ck.json"
        save_checkpoint(engine, path, stage="spr", step=1)
        payload = json.loads(path.read_text())
        del payload["branch_opt_method"]
        payload["format_version"] = 1
        path.write_text(json.dumps(payload))
        assert load_checkpoint(path).branch_opt_method == "newton"

    def test_obs_spans_and_counters(self):
        from repro import obs

        obs.disable()
        obs.get_registry().clear()
        try:
            obs.enable("gradient-test")
            engine = make_engine(17)
            engine.all_branch_gradients()
            optimize_all_branches(engine, passes=1, method="gradient")
            proximal_smooth(engine, lam=1.0, max_sweeps=4)
            names = {s.name for s in obs.get_tracer().spans}
            assert "gradient.all_branches" in names
            assert "search.branch_smoothing" in names
            assert "search.proxgrad" in names
            snap = obs.get_registry().snapshot()
            assert snap["repro_gradient_sweeps_total"]["value"] >= 1
            assert (
                snap["repro_branch_opt_method_gradient_total"]["value"] == 1
            )
            assert snap["repro_proxgrad_sweeps_total"]["value"] >= 1
            assert "repro_proxgrad_sparsity" in snap
        finally:
            obs.disable()
            obs.get_registry().clear()
