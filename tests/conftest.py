"""Shared fixtures: small simulated datasets and engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.phylo import GammaRates, gtr, simulate_dataset


@pytest.fixture(scope="session")
def small_sim():
    """6-taxon, 200-site GTR+Gamma simulation (session-cached)."""
    return simulate_dataset(n_taxa=6, n_sites=200, seed=1234)


@pytest.fixture(scope="session")
def medium_sim():
    """10-taxon, 400-site GTR+Gamma simulation (session-cached)."""
    return simulate_dataset(n_taxa=10, n_sites=400, seed=99)


@pytest.fixture()
def small_engine(small_sim):
    patterns = small_sim.alignment.compress()
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    return LikelihoodEngine(
        patterns, small_sim.tree.copy(), model, GammaRates(0.8, 4)
    )
