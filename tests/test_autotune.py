"""Cost-model autotuner tests.

The decision layer (``predict_seconds`` / ``enumerate_candidates`` /
``decide``) is pure: pinned synthetic probe profiles must always yield
the same decision, the chosen config is never predicted slower than the
static default, and a table missing the default is rejected outright.

The cache layer round-trips decisions through the JSON file named by
``$REPRO_TUNE_CACHE``, invalidates on version mismatch, and a cache hit
makes ``autotune`` skip probing entirely.

End to end, ``make_engine(auto=True)`` must produce the same likelihood
as an explicit reference engine — tuning changes speed, never numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.core.backends import BlockedBackend, make_engine
from repro.parallel.openmp import OpenMPModel
from repro.parallel.pthreads import ForkJoinModel
from repro.perf import autotune as at
from repro.perf.autotune import (
    CACHE_VERSION,
    DEFAULT_CONFIG,
    TUNE_CACHE_ENV,
    CandidateCost,
    Decision,
    ProbeResult,
    TunedConfig,
    TuningCache,
    WorkloadSignature,
    build_backend,
    decide,
    default_cache_path,
    enumerate_candidates,
    predict_seconds,
)
from repro.perf.costmodel import MeasuredKernelCost
from repro.phylo import gtr, simulate_dataset


def _cost(kernel: str, seconds: float, site_units: float) -> MeasuredKernelCost:
    return MeasuredKernelCost(
        kernel=kernel, calls=1, site_units=site_units, seconds=seconds,
        bytes_moved=0,
    )


def _pinned_probes() -> dict[str, at.ProbeResult]:
    """A deterministic probe table: compiled 8x faster than reference."""
    def probe(label: str, backend: str, per_site: float,
              block: int | None = None) -> ProbeResult:
        sites = 4096.0
        costs = {
            k: _cost(k, per_site * sites, sites)
            for k in ("newview", "evaluate", "derivative_sum",
                      "derivative_core")
        }
        return ProbeResult(
            config=TunedConfig(backend=backend, block_sites=block),
            probe_sites=4096,
            probe_units=1.0,
            measured_s=per_site * sites * 3.0,
            costs=costs,
        )

    return {
        "reference": probe("reference", "reference", 8e-8),
        "blocked": probe("blocked", "blocked", 6e-8),
        "blocked block=2048": probe("blocked block=2048", "blocked",
                                    5e-8, block=2048),
        "compiled": probe("compiled", "compiled", 1e-8),
    }


class TestSignature:
    def test_bucket_next_power_of_two(self):
        assert WorkloadSignature.from_workload(1000, 4, 4).sites_bucket == 1024
        assert WorkloadSignature.from_workload(1024, 4, 4).sites_bucket == 1024
        assert WorkloadSignature.from_workload(1025, 4, 4).sites_bucket == 2048
        assert WorkloadSignature.from_workload(0, 4, 4).sites_bucket == 1

    def test_key_round_trip(self):
        sig = WorkloadSignature.from_workload(100_000, 20, 4)
        assert sig.key == "s131072_k20_r4"
        assert WorkloadSignature.from_key(sig.key) == sig

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            WorkloadSignature.from_key("nonsense")


class TestTunedConfig:
    def test_dict_round_trip(self):
        for cfg in (
            DEFAULT_CONFIG,
            TunedConfig("blocked", block_sites=2048),
            TunedConfig("compiled", execution="threads", workers=4),
        ):
            assert TunedConfig.from_dict(cfg.to_dict()) == cfg

    def test_labels(self):
        assert DEFAULT_CONFIG.label == "reference"
        assert TunedConfig("blocked", block_sites=4096).label == (
            "blocked block=4096"
        )
        assert TunedConfig(
            "compiled", execution="threads", workers=2
        ).label == "compiled threadsx2"


class TestPredictSeconds:
    def test_untimed_kernels_skipped_not_free(self):
        timed = {"newview": _cost("newview", 1e-4, 1000.0)}
        with_untimed = dict(timed)
        with_untimed["evaluate"] = _cost("evaluate", 0.0, 0.0)
        assert with_untimed["evaluate"].seconds_per_site is None
        assert predict_seconds(with_untimed, 1e6) == (
            predict_seconds(timed, 1e6)
        )

    def test_scales_linearly_with_sites(self):
        costs = {"newview": _cost("newview", 1e-4, 1000.0)}
        assert predict_seconds(costs, 2e6) == pytest.approx(
            2 * predict_seconds(costs, 1e6)
        )

    def test_workers_divide_compute_and_add_sync(self):
        costs = {"newview": _cost("newview", 1e-4, 1000.0)}
        serial = predict_seconds(costs, 1e6)
        parallel = predict_seconds(
            costs, 1e6, workers=4, region_overhead_s=1e-5
        )
        assert parallel == pytest.approx(
            serial / 4 + at.REGIONS_PER_UNIT * 1e-5
        )


class TestDecide:
    SIG = WorkloadSignature(8192, 4, 4)

    def _candidates(self):
        return enumerate_candidates(_pinned_probes(), self.SIG.sites_bucket)

    def test_deterministic_and_never_slower_than_default(self):
        first = decide(self.SIG, self._candidates())
        second = decide(self.SIG, self._candidates())
        assert first == second
        assert first.chosen == TunedConfig("compiled")
        assert first.predicted_s <= first.default_predicted_s
        # table is ranked, default present
        labels = [c.config.label for c in first.candidates]
        assert labels[0] == "compiled"
        assert "reference" in labels

    def test_missing_default_raises(self):
        table = [
            c for c in self._candidates() if c.config != DEFAULT_CONFIG
        ]
        with pytest.raises(ValueError, match="missing the default"):
            decide(self.SIG, table)

    def test_empty_table_raises(self):
        with pytest.raises(ValueError, match="empty"):
            decide(self.SIG, [])

    def test_tie_broken_by_label(self):
        tied = [
            CandidateCost(TunedConfig("reference"), 1.0),
            CandidateCost(TunedConfig("blocked"), 1.0),
        ]
        assert decide(self.SIG, tied).chosen == TunedConfig("blocked")


class TestEnumerateCandidates:
    def test_single_cpu_yields_no_parallel_rows(self):
        table = enumerate_candidates(
            _pinned_probes(), 8192.0, cpu_count=1,
            forkjoin_model=ForkJoinModel(
                name="synthetic",
                barrier=OpenMPModel("synthetic", 1e-5, 1e-6),
            ),
        )
        assert all(c.config.workers == 1 for c in table)

    def test_no_forkjoin_model_yields_no_parallel_rows(self):
        table = enumerate_candidates(_pinned_probes(), 8192.0, cpu_count=8)
        assert all(c.config.workers == 1 for c in table)

    def test_forkjoin_rows_priced_with_region_overhead(self):
        fj = ForkJoinModel(
            name="synthetic", barrier=OpenMPModel("synthetic", 1e-5, 1e-6)
        )
        table = enumerate_candidates(
            _pinned_probes(), 8192.0, cpu_count=4, forkjoin_model=fj
        )
        parallel = [c for c in table if c.config.workers > 1]
        assert parallel
        assert {c.config.workers for c in parallel} == {2, 4}
        assert {c.config.execution for c in parallel} == {
            "threads", "processes"
        }
        # parallel rows carry sync cost: worse than compute/workers alone
        serial = {c.config.backend: c for c in table if c.config.workers == 1
                  and c.config.block_sites is None}
        for c in parallel:
            if c.config.block_sites is not None:
                continue
            base = serial[c.config.backend].predicted_s
            assert c.predicted_s > base / c.config.workers

    def test_serial_rows_carry_probe_measurement(self):
        table = enumerate_candidates(_pinned_probes(), 8192.0)
        assert all(c.measured_probe_s is not None for c in table)


class TestBuildBackend:
    def test_block_sites_configures_blocked(self):
        backend = build_backend(TunedConfig("blocked", block_sites=2048))
        assert isinstance(backend, BlockedBackend)
        assert backend.block_sites == 2048

    def test_plain_name_resolves_registry(self):
        assert build_backend(DEFAULT_CONFIG).name == "reference"


class TestTuningCache:
    def _decision(self, sig: WorkloadSignature) -> Decision:
        return Decision(
            signature=sig,
            chosen=TunedConfig("compiled"),
            predicted_s=0.01,
            default_predicted_s=0.08,
        )

    def test_round_trip_via_env(self, tmp_path, monkeypatch):
        path = tmp_path / "tuning.json"
        monkeypatch.setenv(TUNE_CACHE_ENV, str(path))
        assert default_cache_path() == path
        sig = WorkloadSignature(4096, 4, 4)
        cache = TuningCache()
        assert cache.get(sig) is None
        cache.put(self._decision(sig))
        got = TuningCache().get(sig)  # fresh instance: reads the file
        assert got is not None
        assert got.chosen == TunedConfig("compiled")
        assert got.predicted_s == 0.01
        raw = json.loads(path.read_text())
        assert raw["version"] == CACHE_VERSION
        assert sig.key in raw["entries"]

    def test_version_mismatch_invalidates(self, tmp_path):
        path = tmp_path / "tuning.json"
        sig = WorkloadSignature(4096, 4, 4)
        cache = TuningCache(path)
        cache.put(self._decision(sig))
        data = json.loads(path.read_text())
        data["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(data))
        assert TuningCache(path).get(sig) is None

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json")
        assert TuningCache(path).get(WorkloadSignature(4096, 4, 4)) is None


class TestAutotune:
    def test_cache_hit_skips_probing(self, tmp_path, monkeypatch):
        sig = WorkloadSignature(4096, 4, 4)
        cache = TuningCache(tmp_path / "tuning.json")
        cache.put(Decision(
            signature=sig, chosen=TunedConfig("compiled"),
            predicted_s=0.01, default_predicted_s=0.08,
        ))

        def boom(*a, **kw):  # probing must not happen on a hit
            raise AssertionError("run_probes called despite cache hit")

        monkeypatch.setattr(at, "run_probes", boom)
        decision = at.autotune(sig, cache=cache)
        assert decision.chosen == TunedConfig("compiled")
        assert decision.candidates == ()  # hits carry no probe table

    def test_probe_decision_persisted_and_stable(self, tmp_path):
        sig = WorkloadSignature(2048, 4, 4)
        cache = TuningCache(tmp_path / "tuning.json")
        first = at.autotune(sig, cache=cache, rounds=1)
        assert first.predicted_s <= first.default_predicted_s
        hit = at.autotune(sig, cache=cache)
        assert hit.chosen == first.chosen

    def test_refresh_reprobes(self, tmp_path, monkeypatch):
        sig = WorkloadSignature(2048, 4, 4)
        cache = TuningCache(tmp_path / "tuning.json")
        cache.put(Decision(
            signature=sig, chosen=TunedConfig("reference"),
            predicted_s=9.9, default_predicted_s=9.9,
        ))
        calls = {"n": 0}
        real = at.run_probes

        def counting(*a, **kw):
            calls["n"] += 1
            return real(*a, **kw)

        monkeypatch.setattr(at, "run_probes", counting)
        at.autotune(sig, cache=cache, refresh=True, rounds=1)
        assert calls["n"] == 1


class TestMakeEngineAuto:
    """Tuning changes speed, never numbers."""

    def test_auto_matches_reference_lnl(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TUNE_CACHE_ENV, str(tmp_path / "tuning.json"))
        sim = simulate_dataset(n_taxa=8, n_sites=300, seed=11)
        ref = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            backend="reference",
        ).log_likelihood()
        auto = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(), auto=True
        ).log_likelihood()
        assert auto == pytest.approx(ref, abs=1e-9)
        # decision was cached under the workload's signature
        entries = TuningCache().entries()
        assert len(entries) == 1

    def test_backend_auto_string_equivalent(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TUNE_CACHE_ENV, str(tmp_path / "tuning.json"))
        sim = simulate_dataset(n_taxa=6, n_sites=200, seed=12)
        via_string = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(), backend="auto"
        ).log_likelihood()
        ref = make_engine(
            sim.alignment.compress(), sim.tree.copy(), gtr(),
            backend="reference",
        ).log_likelihood()
        assert via_string == pytest.approx(ref, abs=1e-9)

    def test_auto_with_explicit_backend_rejected(self):
        sim = simulate_dataset(n_taxa=4, n_sites=60, seed=13)
        with pytest.raises(ValueError, match="auto=True picks the backend"):
            make_engine(
                sim.alignment.compress(), sim.tree.copy(), gtr(),
                backend="blocked", auto=True,
            )
