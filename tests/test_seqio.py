"""Unit tests for FASTA / PHYLIP I/O."""

import io

import pytest

from repro.phylo import (
    read_alignment,
    read_fasta,
    read_phylip,
    write_fasta,
    write_phylip,
)

FASTA = """\
>alpha some description
ACGTAC
>beta
ACG
TAC
"""

PHYLIP = """\
2 6
alpha  ACGTAC
beta   ACGTAC
"""

PHYLIP_INTERLEAVED = """\
2 8
alpha  ACGT
beta   TTTT
AAAA
CCCC
"""


class TestFasta:
    def test_parse_with_wrapping(self):
        aln = read_fasta(io.StringIO(FASTA))
        assert aln.n_taxa == 2
        assert aln.n_sites == 6
        assert aln.sequence("beta") == "ACGTAC"

    def test_name_stops_at_whitespace(self):
        aln = read_fasta(io.StringIO(FASTA))
        assert "alpha" in aln.taxa

    def test_duplicate_record_rejected(self):
        text = ">a\nAC\n>a\nGT\n"
        with pytest.raises(ValueError, match="duplicate"):
            read_fasta(io.StringIO(text))

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before first header"):
            read_fasta(io.StringIO("ACGT\n>a\nACGT\n"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no FASTA records"):
            read_fasta(io.StringIO("\n\n"))

    def test_roundtrip_via_file(self, tmp_path):
        aln = read_fasta(io.StringIO(FASTA))
        path = tmp_path / "x.fasta"
        write_fasta(aln, path, width=4)
        aln2 = read_fasta(path)
        assert aln2.taxa == aln.taxa
        assert aln2.sequence("alpha") == aln.sequence("alpha")


class TestPhylip:
    def test_parse_sequential(self):
        aln = read_phylip(io.StringIO(PHYLIP))
        assert aln.n_taxa == 2
        assert aln.n_sites == 6

    def test_parse_interleaved(self):
        aln = read_phylip(io.StringIO(PHYLIP_INTERLEAVED))
        assert aln.sequence("alpha") == "ACGTAAAA"
        assert aln.sequence("beta") == "TTTTCCCC"

    def test_header_mismatch_detected(self):
        bad = "2 9\nalpha ACGTAC\nbeta ACGTAC\n"
        with pytest.raises(ValueError, match="promises"):
            read_phylip(io.StringIO(bad))

    def test_missing_taxon_detected(self):
        bad = "3 6\nalpha ACGTAC\nbeta ACGTAC\n"
        with pytest.raises(ValueError, match="taxa"):
            read_phylip(io.StringIO(bad))

    def test_roundtrip_via_file(self, tmp_path):
        aln = read_phylip(io.StringIO(PHYLIP))
        path = tmp_path / "x.phy"
        write_phylip(aln, path)
        aln2 = read_phylip(path)
        assert aln2.taxa == aln.taxa
        assert aln2.sequence("beta") == aln.sequence("beta")


class TestAutodetect:
    def test_detects_fasta(self, tmp_path):
        p = tmp_path / "a.txt"
        p.write_text(FASTA)
        assert read_alignment(p).n_taxa == 2

    def test_detects_phylip(self, tmp_path):
        p = tmp_path / "b.txt"
        p.write_text(PHYLIP)
        assert read_alignment(p).n_sites == 6
