"""Tests for real shared-memory parallel execution (worker pool + modes).

Covers the PR 5 acceptance criteria: bit-identical log-likelihoods and
branch derivatives across worker counts and execution substrates,
worker-death degradation with slice adoption, observability aggregation
without double counting, measured barrier statistics feeding the cost
model, and shared-memory hygiene (no leaked segments after close).
"""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.core.backends import get_backend, make_engine
from repro.core.cat import CatLikelihoodEngine
from repro.parallel import (
    ForkJoinEngine,
    SumBufferHandle,
    WorkerFailure,
    WorkerPool,
    active_arena_segments,
    merged_backend_profile,
)
from repro.parallel.forkjoin import (
    EXECUTION_MODES,
    default_execution,
    default_workers,
)
from repro.parallel.pool import WorkerRestart
from repro.perf.costmodel import calibrate_forkjoin, measured_sync_cost
from repro.phylo import CatRates, GammaRates, gtr, simulate_dataset


@pytest.fixture(scope="module")
def problem():
    sim = simulate_dataset(n_taxa=8, n_sites=240, seed=44)
    pat = sim.alignment.compress()
    return sim, pat, gtr(), GammaRates(0.9, 4)


@pytest.fixture(scope="module")
def serial(problem):
    sim, pat, model, gamma = problem
    eng = LikelihoodEngine(pat, sim.tree.copy(), model, gamma)
    edge = eng.default_edge()
    sb = eng.edge_sum_buffer(edge)
    return {
        "lnl": eng.log_likelihood(),
        "site": eng.site_log_likelihoods(),
        "deriv": eng.branch_derivatives(sb, 0.13),
        "edge": edge,
        "profile": eng.backend.profile,
    }


def pool_lnl(pool, tree, edge, weights):
    """Replay-until-stable evaluation against a raw pool."""
    for _ in range(pool.n_workers + 1):
        try:
            depth = pool.prepare(tree.to_state(), edge)
            for k in range(depth):
                pool.run_wave(k)
            pool.root(edge)
            return float(np.dot(pool.site_lane(), weights))
        except WorkerRestart:
            continue
    raise AssertionError("pool never stabilised")


class TestPoolDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_lnl_bit_identical(self, problem, serial, workers):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=workers
        ) as pool:
            lnl = pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
            assert lnl - serial["lnl"] == 0.0
            np.testing.assert_array_equal(pool.site_lane(), serial["site"])

    @pytest.mark.parametrize("workers", [2, 3])
    def test_derivatives_bit_identical(self, problem, serial, workers):
        from repro.core.kernels import derivative_reduce

        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=workers
        ) as pool:
            edge = serial["edge"]
            depth = pool.prepare(sim.tree.to_state(), edge)
            for k in range(depth):
                pool.run_wave(k)
            handle = pool.sumbuf(edge)
            pool.deriv(handle, 0.13)
            l0, l1, l2 = pool.terms_lane()
            got = derivative_reduce(
                l0.copy(), l1.copy(), l2.copy(), pat.weights
            )
            for g, s in zip(got, serial["deriv"]):
                assert g - s == 0.0

    def test_blocked_backend_matches(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=3,
            backend="blocked",
        ) as pool:
            lnl = pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
            assert lnl - serial["lnl"] == 0.0

    def test_cat_pool_matches_serial_cat(self, problem):
        sim, pat, model, _ = problem
        rng = np.random.default_rng(7)
        cat = CatRates.from_gamma(0.9, pat.n_patterns, 4, rng, weights=pat.weights)
        ref = CatLikelihoodEngine(pat, sim.tree.copy(), model, cat)
        expected = ref.log_likelihood()
        with WorkerPool(
            pat, sim.tree.copy(), model, None, n_workers=3, cat=cat
        ) as pool:
            edge = ref.default_edge()
            lnl = pool_lnl(pool, sim.tree, edge, pat.weights)
            assert lnl - expected == 0.0
            with pytest.raises(ValueError, match="CAT"):
                pool.set_alpha(0.7)


class TestPoolFailure:
    def test_chained_adoption_stays_exact(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=3
        ) as pool:
            edge = serial["edge"]
            assert pool_lnl(pool, sim.tree, edge, pat.weights) - serial["lnl"] == 0.0
            pool.kill_worker(0)
            assert pool_lnl(pool, sim.tree, edge, pat.weights) - serial["lnl"] == 0.0
            adopter = pool.adoptions[0]
            pool.kill_worker(adopter)
            assert pool_lnl(pool, sim.tree, edge, pat.weights) - serial["lnl"] == 0.0
            assert pool.dead == {0, adopter}
            assert pool.worker_failures == 2
            # every dead worker's slice ends up at a live adopter
            for dead in pool.dead:
                assert pool.owner_of(dead) in pool.alive

    def test_abort_policy_raises(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=2,
            on_worker_failure="abort",
        ) as pool:
            pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
            pool.kill_worker(1)
            with pytest.raises(WorkerFailure):
                pool_lnl(pool, sim.tree, serial["edge"], pat.weights)

    def test_stale_sumbuf_epoch_rejected(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=2
        ) as pool:
            edge = serial["edge"]
            depth = pool.prepare(sim.tree.to_state(), edge)
            for k in range(depth):
                pool.run_wave(k)
            old = pool.sumbuf(edge)
            assert isinstance(old, SumBufferHandle)
            pool.sumbuf(edge)  # newer epoch supersedes `old`
            with pytest.raises(ValueError, match="stale"):
                pool.deriv(old, 0.1)


class TestObservability:
    def test_merged_profile_no_double_count(self, problem):
        """Simulated fork-join shares ONE backend instance across worker
        engines; aggregation must count each dispatch exactly once."""
        sim, pat, model, gamma = problem
        fj = ForkJoinEngine(
            pat, sim.tree.copy(), model, gamma, n_threads=3,
            backend=get_backend("reference"),
        )
        fj.log_likelihood()
        merged = merged_backend_profile(fj.workers)
        shared = fj.workers[0].backend.profile
        assert merged.calls == shared.calls
        # the naive per-engine merge would have multiplied by n_threads
        naive = sum(
            sum(w.backend.profile.calls.values()) for w in fj.workers
        )
        assert naive == 3 * sum(merged.calls.values())
        # slices partition the patterns: site units match a serial run
        # of the same single evaluation on a fresh backend instance
        ref = LikelihoodEngine(
            pat, sim.tree.copy(), model, gamma,
            backend=get_backend("reference"),
        )
        ref.log_likelihood()
        assert dict(merged.site_units) == dict(ref.backend.profile.site_units)
        fj.close()

    def test_pool_reset_all_observability(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=2
        ) as pool:
            pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
            assert sum(pool.merged_profile().calls.values()) > 0
            assert pool.merged_wave_stats().waves > 0
            assert pool.barrier_stats.regions > 0
            pool.reset_observability()
            # barrier stats first: the merged_* queries below are
            # themselves pool regions and would re-increment the count
            assert pool.barrier_stats.regions == 0
            assert sum(pool.merged_profile().calls.values()) == 0
            assert pool.merged_wave_stats().waves == 0

    def test_barrier_stats_feed_cost_model(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=2
        ) as pool:
            pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
            cost = measured_sync_cost(pool.barrier_stats)
            assert cost.regions == pool.barrier_stats.regions
            assert cost.mean_region_s > 0.0
            assert cost.mean_overhead_s >= 0.0
            assert 0.0 <= cost.overhead_fraction <= 1.0
            fitted = calibrate_forkjoin({2: pool.barrier_stats})
            assert fitted.region_overhead_s(2) >= 0.0

    def test_calibrate_two_points_extrapolates(self):
        fitted = calibrate_forkjoin(
            {
                2: {"regions": 10, "overhead_seconds": 1e-2},  # mean 1 ms
                4: {"regions": 10, "overhead_seconds": 2e-2},  # mean 2 ms
            }
        )
        assert fitted.region_overhead_s(8) == pytest.approx(4e-3)


class TestForkJoinModes:
    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    def test_gamma_bit_identical(self, problem, serial, execution, threads):
        sim, pat, model, gamma = problem
        backend = "reference" if execution != "simulated" else None
        with ForkJoinEngine(
            pat, sim.tree.copy(), model, gamma, n_threads=threads,
            execution=execution, backend=backend,
        ) as fj:
            assert fj.log_likelihood() - serial["lnl"] == 0.0
            sb = fj.edge_sum_buffer(serial["edge"])
            got = fj.branch_derivatives(sb, 0.13)
            for g, s in zip(got, serial["deriv"]):
                assert g - s == 0.0
        assert active_arena_segments() == []

    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    def test_cat_bit_identical(self, problem, execution):
        sim, pat, model, _ = problem
        rng = np.random.default_rng(7)
        cat = CatRates.from_gamma(0.9, pat.n_patterns, 4, rng, weights=pat.weights)
        ref = CatLikelihoodEngine(pat, sim.tree.copy(), model, cat)
        backend = "reference" if execution != "simulated" else None
        with ForkJoinEngine(
            pat, sim.tree.copy(), model, None, n_threads=3,
            execution=execution, backend=backend, cat=cat,
        ) as fj:
            assert fj.log_likelihood() - ref.log_likelihood() == 0.0
            # CAT alpha refit renormalises against FULL pattern weights
            ref.set_alpha(0.6)
            fj.set_alpha(0.6)
            assert fj.log_likelihood() - ref.log_likelihood() == 0.0

    def test_worker_death_during_engine_use(self, problem, serial):
        sim, pat, model, gamma = problem
        with ForkJoinEngine(
            pat, sim.tree.copy(), model, gamma, n_threads=3,
            execution="processes", backend="reference",
        ) as fj:
            assert fj.log_likelihood() - serial["lnl"] == 0.0
            fj.pool.kill_worker(1)
            assert fj.log_likelihood() - serial["lnl"] == 0.0
            assert fj.pool.adoptions[1] in fj.pool.alive


class TestMakeEngineParallel:
    def test_make_engine_returns_forkjoin(self, problem, serial):
        sim, pat, model, gamma = problem
        eng = make_engine(
            pat, sim.tree.copy(), model, gamma, workers=3,
            execution="threads", backend="reference",
        )
        assert isinstance(eng, ForkJoinEngine)
        assert eng.log_likelihood() - serial["lnl"] == 0.0
        eng.close()

    def test_make_engine_rejects_bad_combos(self, problem):
        sim, pat, model, gamma = problem
        with pytest.raises(ValueError, match="workers"):
            make_engine(pat, sim.tree.copy(), model, gamma, workers=0)
        with pytest.raises(ValueError, match="workers"):
            make_engine(
                pat, sim.tree.copy(), model, gamma, workers=2, p_inv=0.1
            )

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        assert default_workers() == 1
        assert default_execution() == "simulated"
        monkeypatch.setenv("REPRO_WORKERS", "4")
        monkeypatch.setenv("REPRO_EXEC", "processes")
        assert default_workers() == 4
        assert default_execution() == "processes"
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()
        monkeypatch.setenv("REPRO_EXEC", "cuda")
        with pytest.raises(ValueError, match="REPRO_EXEC"):
            default_execution()


class TestArenaHygiene:
    def test_no_leaked_segments_after_close(self, problem, serial):
        sim, pat, model, gamma = problem
        pool = WorkerPool(pat, sim.tree.copy(), model, gamma, n_workers=2)
        assert active_arena_segments() != []
        pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
        pool.close()
        assert active_arena_segments() == []
        pool.close()  # idempotent

    def test_no_leak_after_worker_death(self, problem, serial):
        sim, pat, model, gamma = problem
        with WorkerPool(
            pat, sim.tree.copy(), model, gamma, n_workers=3
        ) as pool:
            pool.kill_worker(2)
            pool_lnl(pool, sim.tree, serial["edge"], pat.weights)
        assert active_arena_segments() == []
