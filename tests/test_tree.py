"""Unit tests for the unrooted tree structure and topology moves."""

import numpy as np
import pytest

from repro.phylo import Tree, random_topology


def quartet() -> Tree:
    """((a,b),(c,d)) with all branch lengths 0.1."""
    return Tree.from_newick("((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1);")


def six_taxa() -> Tree:
    return Tree.from_newick(
        "((a:0.1,b:0.2):0.05,(c:0.1,(d:0.1,(e:0.1,f:0.1):0.1):0.1):0.05);"
    )


class TestConstruction:
    def test_quartet_shape(self):
        t = quartet()
        t.check()
        assert t.n_leaves == 4
        assert len(t.edges) == 5
        assert len(t.internal_nodes()) == 2

    def test_rooted_newick_is_unrooted(self):
        # Rooted input has a degree-2 root that must be suppressed.
        t = Tree.from_newick("((a:0.1,b:0.1):0.2,(c:0.1,d:0.1):0.3);")
        t.check()
        # the merged central edge has length 0.2 + 0.3
        internals = t.internal_nodes()
        eid = t.find_edge(*internals)
        assert t.edge(eid).length == pytest.approx(0.5)

    def test_newick_roundtrip_splits(self):
        t = six_taxa()
        t2 = Tree.from_newick(t.to_newick())
        assert t.robinson_foulds(t2) == 0

    def test_copy_is_deep(self):
        t = quartet()
        t2 = t.copy()
        t2.edge(t2.edge_ids[0]).length = 9.9
        assert t.edge(t.edge_ids[0]).length != 9.9

    def test_self_loop_rejected(self):
        t = Tree()
        n = t.add_node("x")
        with pytest.raises(ValueError, match="self-loop"):
            t.add_edge(n, n)


class TestQueries:
    def test_leaves_and_names(self):
        t = quartet()
        assert sorted(t.leaf_names()) == ["a", "b", "c", "d"]
        assert t.name(t.node_by_name("a")) == "a"

    def test_degree(self):
        t = quartet()
        for leaf in t.leaves():
            assert t.degree(leaf) == 1
        for internal in t.internal_nodes():
            assert t.degree(internal) == 3

    def test_subtree_leaves(self):
        t = quartet()
        a = t.node_by_name("a")
        (nbr, eid) = t.neighbors(a)[0]
        # from the internal side, blocking the pendant edge, we see b, c, d
        names = sorted(t.name(n) for n in t.subtree_leaves(nbr, eid))
        assert names == ["b", "c", "d"]

    def test_path_edges(self):
        t = quartet()
        a, c = t.node_by_name("a"), t.node_by_name("c")
        path = t.path_edges(a, c)
        assert len(path) == 3  # a-int1, int1-int2, int2-c

    def test_postorder_children_before_parents(self):
        t = six_taxa()
        root_edge = t.edge_ids[0]
        seen = set()
        for node, _parent, up_edge in t.postorder(root_edge):
            for child, _eid in t.children(node, up_edge):
                assert child in seen
            seen.add(node)

    def test_edges_within_radius_grows(self):
        t = six_taxa()
        eid = t.edge_ids[0]
        r1 = set(t.edges_within_radius(eid, 1))
        r3 = set(t.edges_within_radius(eid, 3))
        assert r1 <= r3

    def test_total_branch_length(self):
        # 4 pendant edges of 0.1 plus the central edge merged to 0.1 + 0.1
        assert quartet().total_branch_length() == pytest.approx(0.6)


class TestMoves:
    def test_split_edge_preserves_length(self):
        t = quartet()
        eid = t.edge_ids[0]
        before = t.edge(eid).length
        mid = t.split_edge(eid, 0.25)
        lengths = [t.edge(e).length for e in t.incident_edges(mid)]
        assert sum(lengths) == pytest.approx(before)

    def test_attach_and_prune_roundtrip(self):
        t = quartet()
        eid = t.edge_ids[0]
        leaf, mid, pend = t.attach_leaf(eid, "e", pendant_length=0.3)
        t.check()
        assert t.n_leaves == 5
        rec = t.prune_subtree(pend, subtree_root=leaf)
        t.remove_node(leaf)
        t.check()
        assert t.n_leaves == 4
        assert rec.pendant_length == pytest.approx(0.3)

    def test_spr_and_undo_restore_topology_and_lengths(self):
        t = six_taxa()
        before_newick = t.to_newick()
        before_total = t.total_branch_length()
        a = t.node_by_name("a")
        pendant = t.incident_edges(a)[0]
        targets = t.spr_candidates(pendant, radius=5, subtree_root=a)
        assert targets
        _, undo = t.spr(pendant, targets[-1], subtree_root=a)
        t.check()
        undo()
        t.check()
        t2 = Tree.from_newick(before_newick)
        assert t.robinson_foulds(t2) == 0
        assert t.total_branch_length() == pytest.approx(before_total)

    def test_spr_changes_topology(self):
        t = six_taxa()
        before = t.copy()
        a = t.node_by_name("a")
        pendant = t.incident_edges(a)[0]
        targets = t.spr_candidates(pendant, radius=5, subtree_root=a)
        moved = False
        for target in targets:
            _, undo = t.spr(pendant, target, subtree_root=a)
            if t.robinson_foulds(before) > 0:
                moved = True
            undo()
            pendant = t.incident_edges(a)[0]
        assert moved

    def test_spr_candidates_exclude_subtree(self):
        t = six_taxa()
        e = t.node_by_name("e")
        pendant = t.incident_edges(e)[0]
        subtree_nodes = {e}
        for target in t.spr_candidates(pendant, radius=10, subtree_root=e):
            edge = t.edge(target)
            assert edge.u not in subtree_nodes and edge.v not in subtree_nodes

    def test_nni_swap_and_undo(self):
        t = six_taxa()
        before = t.copy()
        internal_edges = [
            e.id for e in t.edges if not t.is_leaf(e.u) and not t.is_leaf(e.v)
        ]
        undo = t.nni_swap(internal_edges[0], which=0)
        t.check()
        assert t.robinson_foulds(before) > 0
        undo()
        t.check()
        assert t.robinson_foulds(before) == 0

    def test_prune_requires_direction_when_ambiguous(self):
        t = six_taxa()
        internal_edges = [
            e.id for e in t.edges if not t.is_leaf(e.u) and not t.is_leaf(e.v)
        ]
        with pytest.raises(ValueError, match="subtree_root"):
            t.prune_subtree(internal_edges[0])


class TestSplitsAndRF:
    def test_identical_trees_rf_zero(self):
        assert six_taxa().robinson_foulds(six_taxa()) == 0

    def test_different_trees_rf_positive(self):
        t1 = Tree.from_newick("((a,b),(c,d));")
        t2 = Tree.from_newick("((a,c),(b,d));")
        assert t1.robinson_foulds(t2) == 2

    def test_rf_requires_same_taxa(self):
        t1 = Tree.from_newick("((a,b),(c,d));")
        t2 = Tree.from_newick("((a,b),(c,e));")
        with pytest.raises(ValueError, match="taxon sets"):
            t1.robinson_foulds(t2)

    def test_splits_count(self):
        # unrooted 6-taxon binary tree has n-3 = 3 internal edges
        assert len(six_taxa().splits()) == 3


class TestRandomTopology:
    def test_valid_binary_tree(self):
        rng = np.random.default_rng(5)
        t = random_topology([f"t{i}" for i in range(12)], rng)
        t.check()
        assert t.n_leaves == 12

    def test_deterministic_given_seed(self):
        names = [f"t{i}" for i in range(8)]
        t1 = random_topology(names, np.random.default_rng(7))
        t2 = random_topology(names, np.random.default_rng(7))
        assert t1.robinson_foulds(t2) == 0

    def test_branch_lengths_in_range(self):
        rng = np.random.default_rng(5)
        t = random_topology(["a", "b", "c", "d", "e"], rng, branch_length=(0.1, 0.2))
        for e in t.edges:
            assert 0.1 <= e.length <= 0.2
