"""Tests for the simulated parallel runtimes (MPI/OpenMP/PThreads)."""

import numpy as np
import pytest

from repro.parallel import (
    CPU_OPENMP,
    CPU_PTHREADS,
    INFINIBAND_QLOGIC,
    MIC_ONCARD_MPI,
    MIC_OPENMP,
    MIC_PTHREADS,
    PCIE_MIC_MIC,
    SHARED_MEMORY,
    SimMPI,
    allreduce_time,
    distribute_block,
    distribute_cyclic,
)


class TestInterconnects:
    def test_paper_latency_ordering(self):
        """Paper Sec. VI-B3: shm < IB (<5us) < MIC-MIC PCIe (~20us)."""
        assert SHARED_MEMORY.latency_s < INFINIBAND_QLOGIC.latency_s
        assert INFINIBAND_QLOGIC.latency_s < PCIE_MIC_MIC.latency_s
        assert PCIE_MIC_MIC.latency_s == pytest.approx(20e-6)

    def test_message_time_monotone_in_size(self):
        small = PCIE_MIC_MIC.message_time(8)
        big = PCIE_MIC_MIC.message_time(1 << 20)
        assert big > small

    def test_contention_grows_with_ranks(self):
        t2 = MIC_ONCARD_MPI.message_time(8, n_ranks=2)
        t120 = MIC_ONCARD_MPI.message_time(8, n_ranks=120)
        assert t120 > 3 * t2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SHARED_MEMORY.message_time(-1)


class TestAllReduce:
    def test_single_rank_free(self):
        assert allreduce_time(1, 8, SHARED_MEMORY) == 0.0

    def test_cost_grows_with_ranks(self):
        costs = [allreduce_time(p, 8, SHARED_MEMORY) for p in (2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_hierarchical_charges_inter_link(self):
        flat = allreduce_time(4, 8, MIC_ONCARD_MPI)
        hier = allreduce_time(
            4, 8, MIC_ONCARD_MPI, inter=PCIE_MIC_MIC, ranks_per_group=2
        )
        # the hierarchical path includes the slow PCIe hop
        assert hier > 0
        assert hier != flat

    def test_flat_mic_reduction_is_expensive(self):
        """The Sec. V-D flat-MPI failure: 120-rank on-card AllReduce."""
        flat120 = allreduce_time(120, 8, MIC_ONCARD_MPI)
        hybrid2 = allreduce_time(2, 8, MIC_ONCARD_MPI)
        assert flat120 > 10 * hybrid2

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            allreduce_time(0, 8, SHARED_MEMORY)


class TestSimMPI:
    def test_allreduce_sums_exactly(self):
        mpi = SimMPI(4)
        parts = [np.array([1.0, 2.0]), np.array([3.0, 4.0]),
                 np.array([5.0, 6.0]), np.array([7.0, 8.0])]
        total = mpi.allreduce_sum(parts)
        np.testing.assert_array_equal(total, [16.0, 20.0])

    def test_scalar_contributions(self):
        mpi = SimMPI(3)
        assert mpi.allreduce_sum([1.0, 2.0, 3.0])[0] == 6.0

    def test_accounting(self):
        mpi = SimMPI(4)
        mpi.allreduce_sum([1.0] * 4)
        mpi.allreduce_sum([2.0] * 4)
        assert mpi.allreduce_calls == 2
        assert mpi.comm_seconds > 0
        assert mpi.bytes_reduced == 2 * 8 * 4

    def test_wrong_contribution_count(self):
        mpi = SimMPI(2)
        with pytest.raises(ValueError, match="contributions"):
            mpi.allreduce_sum([1.0])

    def test_shape_mismatch(self):
        mpi = SimMPI(2)
        with pytest.raises(ValueError, match="shape"):
            mpi.allreduce_sum([np.zeros(2), np.zeros(3)])


class TestSyncModels:
    def test_mic_region_slower_than_cpu(self):
        assert MIC_OPENMP.region_overhead_s(118) > CPU_OPENMP.region_overhead_s(16)

    def test_single_thread_free(self):
        assert MIC_OPENMP.region_overhead_s(1) == 0.0

    def test_forkjoin_doubles_barrier(self):
        assert MIC_PTHREADS.region_overhead_s(118) == pytest.approx(
            2 * MIC_OPENMP.region_overhead_s(118)
        )
        assert CPU_PTHREADS.region_overhead_s(16) == pytest.approx(
            2 * CPU_OPENMP.region_overhead_s(16)
        )

    def test_parallel_for_scales(self):
        t1 = MIC_OPENMP.parallel_for_time(10_000, 1, 1e-7)
        t118 = MIC_OPENMP.parallel_for_time(10_000, 118, 1e-7)
        # big enough chunk: threading wins despite the ~113 us region cost
        assert t118 < t1

    def test_parallel_for_tiny_chunks_lose(self):
        # 100 items across 118 threads: barrier dominates
        t1 = MIC_OPENMP.parallel_for_time(100, 1, 1e-8)
        t118 = MIC_OPENMP.parallel_for_time(100, 118, 1e-8)
        assert t118 > t1


class TestDistribution:
    def test_block_covers_all_sites(self):
        d = distribute_block(103, 7)
        seen = sorted(i for a in d.assignment for i in a)
        assert seen == list(range(103))

    def test_cyclic_covers_all_sites(self):
        d = distribute_cyclic(103, 7)
        seen = sorted(i for a in d.assignment for i in a)
        assert seen == list(range(103))

    def test_balance(self):
        d = distribute_cyclic(1000, 7)
        counts = d.per_worker_counts
        assert max(counts) - min(counts) <= 1
        assert d.imbalance < 1.01

    def test_max_per_worker(self):
        d = distribute_block(100, 8)
        assert d.max_per_worker == 13

    def test_more_workers_than_sites(self):
        d = distribute_cyclic(3, 8)
        assert sum(d.per_worker_counts) == 3

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            distribute_block(10, 0)


class TestDistributionEdgeCases:
    """PR 5 satellites: empty slices and worker-surplus corner cases."""

    @pytest.mark.parametrize("factory", [distribute_block, distribute_cyclic])
    def test_zero_patterns_gives_all_empty(self, factory):
        d = factory(0, 3)
        assert d.per_worker_counts == [0, 0, 0]
        assert all(len(a) == 0 for a in d.assignment)

    @pytest.mark.parametrize("factory", [distribute_block, distribute_cyclic])
    def test_more_workers_than_patterns(self, factory):
        d = factory(3, 8)
        assert sum(d.per_worker_counts) == 3
        # the surplus workers hold empty, queryable slices
        assert list(d.indices_of(7)) == []
        seen = sorted(i for a in d.assignment for i in a)
        assert seen == [0, 1, 2]

    @pytest.mark.parametrize("factory", [distribute_block, distribute_cyclic])
    def test_single_worker_owns_everything(self, factory):
        d = factory(17, 1)
        assert list(d.indices_of(0)) == list(range(17))

    def test_block_slices_are_contiguous(self):
        d = distribute_block(103, 7)
        for w in range(7):
            idx = d.indices_of(w)
            if len(idx):
                assert list(idx) == list(range(idx[0], idx[-1] + 1))


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestDistributionProperties:
    """Every distribution is a partition: disjoint, complete, balanced."""

    @settings(max_examples=60, deadline=None)
    @given(
        n_patterns=st.integers(min_value=0, max_value=500),
        n_workers=st.integers(min_value=1, max_value=40),
        scheme=st.sampled_from(["block", "cyclic"]),
    )
    def test_partition_property(self, n_patterns, n_workers, scheme):
        factory = distribute_block if scheme == "block" else distribute_cyclic
        d = factory(n_patterns, n_workers)
        chunks = [list(d.indices_of(w)) for w in range(n_workers)]
        flat = [i for c in chunks for i in c]
        # disjoint + complete
        assert sorted(flat) == list(range(n_patterns))
        assert len(set(flat)) == len(flat)
        counts = [len(c) for c in chunks]
        if scheme == "cyclic":
            # cyclic dealing is balanced to within one site
            assert max(counts) - min(counts) <= 1
        else:
            # ceil-sized blocks: no worker exceeds ceil(n/p), and every
            # non-empty chunk is a contiguous index range
            ceil = -(-n_patterns // n_workers)
            assert max(counts, default=0) <= ceil
            for c in chunks:
                if c:
                    assert c == list(range(c[0], c[-1] + 1))
