"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LikelihoodEngine
from repro.core.kernels import branch_exponentials
from repro.core.layouts import InterleavedLayout
from repro.phylo import (
    Alignment,
    GammaRates,
    Tree,
    compress_patterns,
    discrete_gamma_rates,
    gtr,
    random_topology,
)
from repro.phylo.newick import format_newick, parse_newick
from repro.phylo.states import DNA

# -- strategies --------------------------------------------------------------

dna_sequences = st.text(alphabet="ACGT-NRY", min_size=1, max_size=30)


@st.composite
def alignments(draw, min_taxa=2, max_taxa=6):
    n_taxa = draw(st.integers(min_taxa, max_taxa))
    n_sites = draw(st.integers(1, 25))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    data = rng.choice([1, 2, 4, 8, 15], size=(n_taxa, n_sites)).astype(np.uint32)
    return Alignment([f"t{i}" for i in range(n_taxa)], data)


@st.composite
def random_trees(draw, min_taxa=4, max_taxa=10):
    n = draw(st.integers(min_taxa, max_taxa))
    seed = draw(st.integers(0, 2**31))
    return random_topology(
        [f"t{i}" for i in range(n)], np.random.default_rng(seed)
    )


# -- alignment properties ----------------------------------------------------


class TestCompressionProperties:
    @given(alignments())
    @settings(max_examples=40, deadline=None)
    def test_weights_sum_to_sites(self, aln):
        pat = compress_patterns(aln)
        assert pat.weights.sum() == aln.n_sites
        assert pat.n_patterns <= aln.n_sites

    @given(alignments())
    @settings(max_examples=40, deadline=None)
    def test_expansion_reconstructs_columns(self, aln):
        pat = compress_patterns(aln)
        reconstructed = pat.data[:, pat.site_to_pattern]
        np.testing.assert_array_equal(reconstructed, aln.data)

    @given(alignments())
    @settings(max_examples=40, deadline=None)
    def test_patterns_are_distinct(self, aln):
        pat = compress_patterns(aln)
        cols = {tuple(pat.data[:, p]) for p in range(pat.n_patterns)}
        assert len(cols) == pat.n_patterns


# -- newick properties -------------------------------------------------------


class TestNewickProperties:
    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_topology(self, tree):
        again = Tree.from_newick(tree.to_newick())
        assert tree.robinson_foulds(again) == 0

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_total_length(self, tree):
        again = Tree.from_newick(tree.to_newick(precision=12))
        assert again.total_branch_length() == pytest.approx(
            tree.total_branch_length(), rel=1e-6
        )

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_parse_format_idempotent(self, tree):
        text = tree.to_newick()
        assert format_newick(parse_newick(text)) == text


# -- tree properties ---------------------------------------------------------


class TestTreeProperties:
    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_binary_invariants(self, tree):
        tree.check()
        assert len(tree.edges) == 2 * tree.n_leaves - 3

    @given(random_trees(min_taxa=5), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_spr_undo_is_identity(self, tree, seed):
        rng = np.random.default_rng(seed)
        before = tree.to_newick(precision=12)
        before_total = tree.total_branch_length()
        leaf = tree.leaves()[int(rng.integers(tree.n_leaves))]
        pendant = tree.incident_edges(leaf)[0]
        targets = tree.spr_candidates(pendant, radius=6, subtree_root=leaf)
        if not targets:
            return
        target = targets[int(rng.integers(len(targets)))]
        _, undo = tree.spr(pendant, target, subtree_root=leaf)
        tree.check()
        undo()
        tree.check()
        assert tree.robinson_foulds(Tree.from_newick(before)) == 0
        assert tree.total_branch_length() == pytest.approx(
            before_total, rel=1e-9
        )

    @given(random_trees(), random_trees())
    @settings(max_examples=30, deadline=None)
    def test_rf_is_metric_like(self, t1, t2):
        if set(t1.leaf_names()) != set(t2.leaf_names()):
            return
        d12 = t1.robinson_foulds(t2)
        assert d12 == t2.robinson_foulds(t1)  # symmetry
        assert d12 >= 0
        assert t1.robinson_foulds(t1) == 0  # identity


# -- model / rates properties ------------------------------------------------


class TestModelProperties:
    @given(
        st.lists(st.floats(0.05, 20.0), min_size=6, max_size=6),
        st.lists(st.floats(0.05, 1.0), min_size=4, max_size=4),
        st.floats(0.001, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_transition_matrices_are_stochastic(self, ex, raw_pi, t):
        pi = np.asarray(raw_pi)
        pi = pi / pi.sum()
        model = gtr(np.asarray(ex), pi)
        p = model.eigen().transition_matrix(t)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(p >= -1e-10)

    @given(st.floats(0.05, 50.0), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_gamma_rates_mean_one(self, alpha, k):
        rates = discrete_gamma_rates(alpha, k)
        assert rates.mean() == pytest.approx(1.0, abs=1e-9)
        assert np.all(rates > 0)
        assert np.all(np.diff(rates) >= -1e-12)

    @given(st.floats(0.05, 20.0), st.floats(0.0, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_branch_exponentials_bounded(self, alpha, t):
        model = gtr()
        rates = GammaRates(alpha, 4)
        e = branch_exponentials(model.eigen(), rates.rates, t)
        # eigenvalues <= 0 for a proper rate matrix: exp in (0, 1]
        assert np.all(e <= 1.0 + 1e-12)
        assert np.all(e > 0.0)


# -- likelihood properties ---------------------------------------------------


class TestLikelihoodProperties:
    @given(st.integers(0, 2**31), st.integers(4, 7))
    @settings(max_examples=15, deadline=None)
    def test_pulley_principle_random_instances(self, seed, n_taxa):
        from repro.phylo import simulate_dataset

        sim = simulate_dataset(n_taxa=n_taxa, n_sites=30, seed=seed % 10_000)
        pat = sim.alignment.compress()
        engine = LikelihoodEngine(pat, sim.tree, gtr(), GammaRates(1.0, 4))
        vals = [engine.log_likelihood(e) for e in sim.tree.edge_ids]
        assert max(vals) - min(vals) < 1e-8

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_likelihood_is_log_probability(self, seed):
        from repro.phylo import simulate_dataset

        sim = simulate_dataset(n_taxa=5, n_sites=20, seed=seed % 10_000)
        pat = sim.alignment.compress()
        engine = LikelihoodEngine(pat, sim.tree, gtr(), GammaRates(1.0, 4))
        assert engine.log_likelihood() < 0.0  # probability < 1

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_longer_wrong_branches_hurt(self, seed):
        """Stretching every branch far beyond truth lowers lnL."""
        from repro.phylo import simulate_dataset

        sim = simulate_dataset(n_taxa=6, n_sites=100, seed=seed % 10_000)
        pat = sim.alignment.compress()
        engine = LikelihoodEngine(pat, sim.tree, gtr(), GammaRates(1.0, 4))
        base = engine.log_likelihood()
        for e in sim.tree.edges:
            e.length = 10.0
        stretched = engine.log_likelihood()
        assert stretched < base


# -- layout properties -------------------------------------------------------


class TestLayoutProperties:
    @given(
        st.integers(1, 40),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([4, 20]),
        st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_and_alignment(self, n_sites, n_rates, n_states, align):
        layout = InterleavedLayout(n_sites, n_rates, n_states, alignment=align)
        rng = np.random.default_rng(0)
        z = rng.normal(size=(n_sites, n_rates, n_states))
        flat = layout.to_flat(z)
        np.testing.assert_array_equal(layout.from_flat(flat), z)
        for site in range(n_sites):
            assert layout.site_offset(site) % align == 0
        assert layout.padded_doubles >= layout.block_doubles


# -- tip encoding properties -------------------------------------------------


class TestStateProperties:
    @given(st.text(alphabet="ACGTUNRYSWKMBDHV-?.", min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_encode_gives_valid_codes(self, seq):
        codes = DNA.encode(seq)
        assert np.all(codes >= 1)
        assert np.all(codes <= 15)

    @given(st.lists(st.integers(1, 15), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_tip_rows_match_popcount(self, codes):
        rows = DNA.tip_rows(np.array(codes))
        for code, row in zip(codes, rows):
            assert row.sum() == bin(code).count("1")
