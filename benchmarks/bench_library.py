"""Library-level benchmarks: real (Python) throughput of the NumPy
reference kernels and of the end-to-end search.

These do not reproduce a paper artefact; they track the performance of
*this* library's hot paths so regressions in the reference
implementation are visible (the role pytest-benchmark usually plays in
an open-source numerical project).
"""

import numpy as np
import pytest

from repro.core import LikelihoodEngine
from repro.core import kernels as ref
from repro.phylo import GammaRates, gtr, simulate_dataset
from repro.search import SearchConfig, ml_search, optimize_all_branches


@pytest.fixture(scope="module")
def big_clas():
    rng = np.random.default_rng(7)
    n = 20_000
    zl = rng.uniform(0.1, 1.0, size=(n, 4, 4))
    zr = rng.uniform(0.1, 1.0, size=(n, 4, 4))
    model = gtr()
    gamma = GammaRates(0.8, 4)
    return model.eigen(), gamma, zl, zr


def test_reference_newview_throughput(benchmark, big_clas):
    eigen, gamma, zl, zr = big_clas
    a1 = ref.branch_matrices(eigen, gamma.rates, 0.2)
    a2 = ref.branch_matrices(eigen, gamma.rates, 0.4)
    zeros = np.zeros(zl.shape[0], dtype=np.int64)
    out, _ = benchmark(
        ref.newview_inner_inner, eigen.u_inv, a1, a2, zl, zr, zeros, zeros
    )
    assert out.shape == zl.shape


def test_reference_evaluate_throughput(benchmark, big_clas):
    eigen, gamma, zl, zr = big_clas
    exps = ref.branch_exponentials(eigen, gamma.rates, 0.3)
    w = np.ones(zl.shape[0])
    zeros = np.zeros(zl.shape[0], dtype=np.int64)
    lnl = benchmark(
        ref.evaluate_edge, zl, zr, exps, gamma.weights, w, zeros
    )
    assert np.isfinite(lnl)


def test_reference_derivative_kernels_throughput(benchmark, big_clas):
    eigen, gamma, zl, zr = big_clas
    w = np.ones(zl.shape[0])

    def both():
        sumbuf = ref.derivative_sum(zl, zr)
        return ref.derivative_core(
            sumbuf, eigen.eigenvalues, gamma.rates, gamma.weights, 0.3, w
        )

    lnl, d1, d2 = benchmark(both)
    assert np.isfinite(d1) and np.isfinite(d2)


def test_full_likelihood_evaluation(benchmark):
    sim = simulate_dataset(n_taxa=15, n_sites=2000, seed=3)
    engine = LikelihoodEngine(
        sim.alignment.compress(), sim.tree, gtr(), GammaRates(1.0, 4)
    )

    def fresh_eval():
        engine.drop_caches()
        return engine.log_likelihood()

    lnl = benchmark(fresh_eval)
    assert lnl < 0


def test_branch_optimization(benchmark):
    sim = simulate_dataset(n_taxa=10, n_sites=1000, seed=4)
    engine = LikelihoodEngine(
        sim.alignment.compress(), sim.tree, gtr(), GammaRates(1.0, 4)
    )
    result = benchmark(optimize_all_branches, engine, 1)
    assert np.isfinite(result)


def test_small_tree_search(benchmark):
    sim = simulate_dataset(n_taxa=7, n_sites=300, seed=5)

    def search():
        return ml_search(
            sim.alignment,
            config=SearchConfig(radii=(3,), max_spr_rounds=2,
                                optimize_exchangeabilities=False),
        )

    res = benchmark.pedantic(search, rounds=1, iterations=1)
    assert res.lnl < 0
