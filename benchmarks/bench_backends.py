#!/usr/bin/env python
"""Backend microbenchmark: reference vs. blocked vs. compiled PLF kernels.

Times the two hot kernels of a likelihood evaluation — ``newview``
(inner-inner case) and ``evaluate`` — at alignment widths spanning the
paper's Table III range, for every benchmarked backend.  At small widths
the whole working set is cache-resident and the numpy backends tie; from
~100K sites the reference backend's full-width temporaries spill to
DRAM while the blocked backend's chunks stay in L2 (the same reasoning
as the paper's Sec. V-B cache blocking), so ``blocked`` must win there —
and the generated-C ``compiled`` backend, which fuses the whole kernel
into one pass with no temporaries at all, must beat ``blocked``.

Each width also records the autotuner's view of the same workload
(predicted vs probe-measured seconds and the chosen configuration), so
``repro bench --compare`` tracks cost-model drift alongside raw kernel
time (``autotune.*`` metrics are informational/mispredict-only by the
ledger's direction rules).

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py [--quick]
        [--out BENCH_backends.json] [--sites 1000 10000 100000]

Writes a JSON report (default ``BENCH_backends.json`` next to the repo
root) and exits non-zero if ``blocked`` fails to beat ``reference``, or
``compiled`` fails to beat ``blocked``, at the largest width >= 100K
sites (the compiled gate is skipped when no C toolchain is available).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.backends import get_backend  # noqa: E402
from repro.core.ckernels import probe_status  # noqa: E402

BACKENDS = ("reference", "blocked", "compiled")
DEFAULT_SITES = (1_000, 10_000, 100_000)
N_RATES = 4
N_STATES = 4


def make_operands(n_sites: int, seed: int = 2014) -> dict:
    """Random DNA+Gamma4-shaped operands for one kernel invocation."""
    rng = np.random.default_rng(seed)
    return {
        "u_inv": rng.normal(size=(N_STATES, N_STATES)),
        "a1": rng.uniform(0.05, 1.0, size=(N_RATES, N_STATES, N_STATES)),
        "a2": rng.uniform(0.05, 1.0, size=(N_RATES, N_STATES, N_STATES)),
        "z1": rng.uniform(0.1, 1.0, size=(n_sites, N_RATES, N_STATES)),
        "z2": rng.uniform(0.1, 1.0, size=(n_sites, N_RATES, N_STATES)),
        "scale1": np.zeros(n_sites, dtype=np.int64),
        "scale2": np.zeros(n_sites, dtype=np.int64),
        "exps": rng.uniform(0.1, 1.0, size=(N_RATES, N_STATES)),
        "rate_weights": np.full(N_RATES, 1.0 / N_RATES),
        "pattern_weights": np.ones(n_sites),
        "scale_counts": np.zeros(n_sites, dtype=np.int64),
    }


def _one_pass(backend, d) -> tuple[float, float]:
    """Seconds for one newview + one evaluate on ``backend``."""
    t0 = time.perf_counter()
    backend.newview_inner_inner(
        d["u_inv"], d["a1"], d["a2"], d["z1"], d["z2"],
        d["scale1"], d["scale2"],
    )
    t1 = time.perf_counter()
    backend.evaluate_edge(
        d["z1"], d["z2"], d["exps"], d["rate_weights"],
        d["pattern_weights"], d["scale_counts"],
    )
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1


def bench_width(n_sites: int, repeats: int, backends: tuple) -> dict:
    d = make_operands(n_sites)
    row: dict = {"sites": n_sites}
    for name in backends:
        backend = get_backend(name)
        _one_pass(backend, d)  # warm-up: scratch alloc, first-use compile
        best_nv = best_ev = float("inf")
        for _ in range(repeats):
            nv, ev = _one_pass(backend, d)
            best_nv = min(best_nv, nv)
            best_ev = min(best_ev, ev)
        row[name] = {
            "newview_s": best_nv,
            "evaluate_s": best_ev,
            "total_s": best_nv + best_ev,
        }
    row["speedup_blocked_vs_reference"] = (
        row["reference"]["total_s"] / row["blocked"]["total_s"]
    )
    if "compiled" in row:
        row["speedup_compiled_vs_blocked"] = (
            row["blocked"]["total_s"] / row["compiled"]["total_s"]
        )
    return row


def autotune_row(n_sites: int) -> dict:
    """The autotuner's decision for this width (no cache side effects).

    Probes run fresh (rounds=1) and nothing is persisted; the mispredict
    ratio compares the winner's predicted time against its own probe
    measurement, both normalised per traversal unit at the probe width.
    """
    from repro.perf.autotune import (
        WorkloadSignature,
        decide,
        enumerate_candidates,
        predict_seconds,
        run_probes,
    )

    signature = WorkloadSignature.from_workload(n_sites, N_STATES, N_RATES)
    probes = run_probes(signature, rounds=1)
    # Price at the probe width so predicted and probe-measured seconds
    # are directly comparable.
    probe_sites = next(iter(probes.values())).probe_sites
    candidates = enumerate_candidates(probes, probe_sites)
    decision = decide(signature, candidates)
    chosen = next(
        c for c in decision.candidates if c.config == decision.chosen
    )
    out = {
        "chosen": decision.chosen.label,
        "predicted_s": decision.predicted_s,
        "default_predicted_s": decision.default_predicted_s,
    }
    if chosen.measured_probe_s:
        out["measured_probe_s"] = chosen.measured_probe_s
        out["mispredict_ratio"] = (
            abs(decision.predicted_s - chosen.measured_probe_s)
            / chosen.measured_probe_s
        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repeats (CI smoke; timings are noisier)",
    )
    parser.add_argument(
        "--sites", type=int, nargs="+", default=list(DEFAULT_SITES),
        help="alignment widths to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per width (default: 7, or 3 with --quick)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_backends.json",
        help="JSON report path",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.quick else 7)

    compiled_ok = probe_status().available
    backends = BACKENDS if compiled_ok else tuple(
        b for b in BACKENDS if b != "compiled"
    )
    if not compiled_ok:
        print("note: no C toolchain; skipping the compiled backend rows")

    rows = []
    hdr = f"{'sites':>9}  {'reference':>11}  {'blocked':>11}"
    if compiled_ok:
        hdr += f"  {'compiled':>11}"
    print(hdr + f"  {'speedup':>7}  autotune choice")
    for n_sites in sorted(args.sites):
        row = bench_width(n_sites, repeats, backends)
        row["autotune"] = autotune_row(n_sites)
        rows.append(row)
        line = (
            f"{n_sites:>9}  "
            f"{row['reference']['total_s'] * 1e3:>9.3f}ms  "
            f"{row['blocked']['total_s'] * 1e3:>9.3f}ms  "
        )
        if compiled_ok:
            line += f"{row['compiled']['total_s'] * 1e3:>9.3f}ms  "
        speedup = row.get(
            "speedup_compiled_vs_blocked",
            row["speedup_blocked_vs_reference"],
        )
        line += f"{speedup:>6.2f}x  {row['autotune']['chosen']}"
        print(line)

    report = {
        "benchmark": "newview_inner_inner + evaluate_edge, best of repeats",
        "backends": list(backends),
        "repeats": repeats,
        "quick": args.quick,
        "results": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    # Acceptance gates at the largest >=100K width: blocked beats
    # reference, and (with a toolchain) compiled beats blocked.
    large = [r for r in rows if r["sites"] >= 100_000]
    if large:
        gate = large[-1]
        if gate["speedup_blocked_vs_reference"] <= 1.0:
            print(
                f"FAIL: blocked slower than reference at {gate['sites']} "
                f"sites ({gate['speedup_blocked_vs_reference']:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: blocked {gate['speedup_blocked_vs_reference']:.2f}x faster "
            f"than reference at {gate['sites']} sites"
        )
        if "speedup_compiled_vs_blocked" in gate:
            if gate["speedup_compiled_vs_blocked"] <= 1.0:
                print(
                    f"FAIL: compiled slower than blocked at {gate['sites']} "
                    f"sites ({gate['speedup_compiled_vs_blocked']:.2f}x)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"OK: compiled {gate['speedup_compiled_vs_blocked']:.2f}x "
                f"faster than blocked at {gate['sites']} sites"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
