"""E5 — Figure 4: 2-MIC vs 1-MIC scaling curve."""

import pytest

from repro.harness.figure4 import compute_figure4
from repro.harness.paper_values import DATASET_SIZES, FIGURE4_TWO_MIC_SPEEDUP


def test_figure4_regeneration(benchmark):
    curve = benchmark(compute_figure4)
    # monotone growth with alignment size
    assert all(b > a for a, b in zip(curve, curve[1:]))
    # sub-linear even at 4M sites (paper: 1.84x, "still suboptimal")
    assert curve[-1] < 2.0
    assert curve[-1] == pytest.approx(FIGURE4_TWO_MIC_SPEEDUP[-1], abs=0.2)
    # two cards do not pay off on the smallest alignment
    assert curve[0] < 1.1
    # crossover (2 cards become worthwhile) in the 10K-100K band, as in
    # the paper where 2-card beats 1-card from 100K upward
    sizes = list(DATASET_SIZES)
    assert curve[sizes.index(100_000)] > 1.0
