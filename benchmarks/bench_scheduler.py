#!/usr/bin/env python
"""Scheduler benchmark: batched wave dispatch vs the per-op path.

Times a full tree validation (``ensure_valid`` from cold CLAs) on a
balanced tree with equal branch lengths — the layout where the
execution-plan IR pays most: every cherry's tip-tip ``newview`` shares
one pair of tip lookup tables through the per-plan preparation cache,
so the ``blocked`` backend's stacked ``newview_batch`` collapses the
whole first wave into a single pair-table build plus one gather per op,
where the per-op path re-runs two gathers, a product, and a contraction
for every cherry.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler.py [--quick]
        [--out BENCH_scheduler.json] [--sites 10000 100000 1000000]

Writes a JSON report (default ``BENCH_scheduler.json``) and exits
non-zero if batched dispatch fails to reach the acceptance gate —
>= 1.15x over the per-op path at every width >= 100K sites — or if the
two paths' CLAs diverge beyond 1e-10.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.engine import LikelihoodEngine  # noqa: E402
from repro.phylo.alignment import PatternAlignment  # noqa: E402
from repro.phylo.models import gtr  # noqa: E402
from repro.phylo.rates import GammaRates  # noqa: E402
from repro.phylo.tree import Tree  # noqa: E402

DEFAULT_SITES = (10_000, 100_000, 1_000_000)
#: Balanced 8-taxon tree: of its 6 newview ops, 3 are tip-tip cherries
#: (the case stacked dispatch collapses into one pair-table gather), one
#: is tip-inner and two are inner-inner — all three kernel kinds in play.
N_TAXA = 8
BRANCH_LENGTH = 0.1
BACKEND = "blocked"


def balanced_tree(n_leaves: int, length: float = BRANCH_LENGTH) -> Tree:
    """Complete balanced unrooted topology with uniform branch lengths."""
    tree = Tree()
    level = [tree.add_node(f"t{i}") for i in range(n_leaves)]
    while len(level) > 2:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            parent = tree.add_node()
            tree.add_edge(parent, level[i], length)
            tree.add_edge(parent, level[i + 1], length)
            nxt.append(parent)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    tree.add_edge(level[0], level[1], length)
    return tree


def make_patterns(n_taxa: int, n_sites: int, seed: int = 2014) -> PatternAlignment:
    """Random unambiguous DNA, kept uncompressed (patterns == sites)."""
    rng = np.random.default_rng(seed)
    data = rng.choice(
        np.array([1, 2, 4, 8], dtype=np.uint32), size=(n_taxa, n_sites)
    )
    return PatternAlignment(
        taxa=[f"t{i}" for i in range(n_taxa)],
        data=data,
        weights=np.ones(n_sites),
        site_to_pattern=np.arange(n_sites),
    )


def time_mode(engine: LikelihoodEngine, root: int, batch: bool, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one cold full validation."""
    engine.executor.batch = batch
    best = float("inf")
    for _ in range(repeats):
        engine.drop_caches()
        t0 = time.perf_counter()
        engine.ensure_valid(root)
        best = min(best, time.perf_counter() - t0)
    return best


def cla_divergence(engine: LikelihoodEngine, root: int) -> float:
    """Max |CLA difference| between the per-op and batched paths."""
    engine.executor.batch = False
    engine.drop_caches()
    engine.ensure_valid(root)
    reference = dict(engine._clas)  # arrays are never mutated in place
    engine.executor.batch = True
    engine.drop_caches()
    engine.ensure_valid(root)
    worst = 0.0
    for node, (z, _sc) in engine._clas.items():
        z_ref, _ = reference[node]
        worst = max(worst, float(np.max(np.abs(z - z_ref))))
    return worst


def bench_width(n_sites: int, repeats: int) -> dict:
    tree = balanced_tree(N_TAXA)
    engine = LikelihoodEngine(
        make_patterns(N_TAXA, n_sites), tree, gtr(), GammaRates(0.8, 4),
        backend=BACKEND,
    )
    root = engine.default_edge()
    time_mode(engine, root, batch=True, repeats=1)  # warm-up / allocation
    per_op = time_mode(engine, root, batch=False, repeats=repeats)
    batched = time_mode(engine, root, batch=True, repeats=repeats)
    max_diff = cla_divergence(engine, root)
    engine.drop_caches()
    shape = engine.plan_execution(root)
    return {
        "sites": n_sites,
        "n_taxa": N_TAXA,
        "per_op_s": per_op,
        "batched_s": batched,
        "speedup_batched_vs_per_op": per_op / batched,
        "max_abs_cla_diff": max_diff,
        "plan": {
            "ops": shape.n_ops,
            "waves": shape.depth,
            "max_width": shape.max_width,
            "kernel_mix": {k.value: n for k, n in shape.kernel_mix().items()},
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller widths and fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--sites", type=int, nargs="+", default=None,
        help="alignment widths to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per width (default: 5, or 3 with --quick)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_scheduler.json",
        help="JSON report path",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.quick else 5)
    # --quick stays below the 100K gate threshold: CI smoke verifies the
    # machinery and CLA parity; the speedup gate is enforced by full runs
    # on quiet machines (the committed BENCH_scheduler.json).
    sites = args.sites or (
        [10_000, 50_000] if args.quick else list(DEFAULT_SITES)
    )

    rows = []
    print(f"{'sites':>9}  {'per-op':>11}  {'batched':>11}  {'speedup':>7}  "
          f"{'maxdiff':>9}")
    for n_sites in sorted(sites):
        row = bench_width(n_sites, repeats)
        rows.append(row)
        print(
            f"{n_sites:>9}  "
            f"{row['per_op_s'] * 1e3:>9.3f}ms  "
            f"{row['batched_s'] * 1e3:>9.3f}ms  "
            f"{row['speedup_batched_vs_per_op']:>6.2f}x  "
            f"{row['max_abs_cla_diff']:>9.2e}"
        )

    report = {
        "benchmark": (
            "cold full-tree ensure_valid, balanced tree, blocked backend, "
            "best of repeats"
        ),
        "backend": BACKEND,
        "repeats": repeats,
        "quick": args.quick,
        "results": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failed = False
    for row in rows:
        if row["max_abs_cla_diff"] > 1e-10:
            print(
                f"FAIL: CLA divergence {row['max_abs_cla_diff']:.2e} at "
                f"{row['sites']} sites",
                file=sys.stderr,
            )
            failed = True
        if row["sites"] >= 100_000 and row["speedup_batched_vs_per_op"] < 1.15:
            print(
                f"FAIL: batched only "
                f"{row['speedup_batched_vs_per_op']:.2f}x over per-op at "
                f"{row['sites']} sites (gate: 1.15x)",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    large = [r for r in rows if r["sites"] >= 100_000]
    if large:
        print(
            f"OK: batched {large[-1]['speedup_batched_vs_per_op']:.2f}x over "
            f"per-op at {large[-1]['sites']} sites, parity 1e-10"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
