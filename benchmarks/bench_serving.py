#!/usr/bin/env python
"""Load-test harness for the placement server (ISSUE 9 tentpole).

Starts an in-process :class:`repro.serve.PlacementServer` on an
ephemeral port with one warm tenant, then fires placement queries from
``batch_size`` concurrent HTTP clients per round — the tenant's
dispatcher fuses concurrent queries into cross-query lockstep wave
dispatches, so ``batch_size`` is the effective fusion width.  Reports
end-to-end request latency (p50/p99, the regression-gated metrics) and
aggregate queries/sec per batch size, and verifies the served jplace
output is **bit-identical** (log-likelihood delta == 0.0) to an offline
serial ``place_queries`` run of the same queries.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
        [--out BENCH_serving.json] [--batch-sizes 1 4 16]
        [--queries 32] [--sites 600]

Writes a JSON report in the unified ledger shape (``entries`` with
``config``/``metrics``) — ``repro bench serving`` ingests it straight
into ``PERF_LEDGER.json`` — and exits non-zero if any served placement
deviates from the offline run by even one ULP.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.phylo import GammaRates, gtr, simulate_dataset  # noqa: E402
from repro.phylo.alignment import Alignment  # noqa: E402
from repro.search.epa import place_queries, to_jplace  # noqa: E402
from repro.serve import PlacementServer  # noqa: E402

DEFAULT_BATCH_SIZES = (1, 4, 16)
N_TAXA = 8
BACKEND = "blocked"


def build_reference(n_sites: int, seed: int = 77):
    """Simulated reference (one taxon pruned off to serve as the query)."""
    sim = simulate_dataset(n_taxa=N_TAXA, n_sites=n_sites, seed=seed)
    aln, tree = sim.alignment, sim.tree
    query = aln.taxa[3]
    ref_tree = tree.copy()
    leaf = ref_tree.node_by_name(query)
    pend = ref_tree.incident_edges(leaf)[0]
    ref_tree.prune_subtree(pend, subtree_root=leaf)
    ref_tree.remove_node(leaf)
    ref_aln = Alignment.from_sequences(
        {t: aln.sequence(t) for t in aln.taxa if t != query}
    )
    return ref_aln, ref_tree, aln.sequence(query)


def post_json(url: str, body: dict, timeout: float = 300.0) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def run_round(
    base_url: str, seq: str, batch_size: int, n_queries: int, tag: str
) -> tuple[list[float], float, dict]:
    """Fire ``n_queries`` single-query requests, ``batch_size`` at a time.

    Returns (per-request latencies, wall seconds, one jplace response
    for the parity check).
    """
    latencies: list[float] = []
    lock = threading.Lock()
    sample: dict = {}

    def client(name: str) -> None:
        t0 = time.perf_counter()
        doc = post_json(
            f"{base_url}/tenants/bench/place",
            {"queries": {name: seq}, "keep_best": 1000},
        )
        dt = time.perf_counter() - t0
        with lock:
            latencies.append(dt)
            sample.setdefault("doc", doc)
            sample.setdefault("name", name)

    wall0 = time.perf_counter()
    fired = 0
    while fired < n_queries:
        wave = min(batch_size, n_queries - fired)
        threads = [
            threading.Thread(target=client, args=(f"{tag}_q{fired + i}",))
            for i in range(wave)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        fired += wave
    wall = time.perf_counter() - wall0
    return latencies, wall, sample


def parity_delta(ref_aln, ref_tree, seq: str, served: dict, name: str) -> float:
    """Max |lnl delta| between a served response and the offline run."""
    offline = place_queries(
        ref_aln,
        ref_tree,
        {name: seq},
        gtr(),
        GammaRates(1.0, 4),
        keep_best=1000,
        backend=BACKEND,
        batch_queries=False,
    )
    expected = to_jplace(offline, ref_tree)
    exp_rows = expected["placements"][0]["p"]
    got_rows = served["placements"][0]["p"]
    if len(exp_rows) != len(got_rows):
        return float("inf")
    delta = 0.0
    for exp, got in zip(exp_rows, got_rows):
        for a, b in zip(exp, got):
            delta = max(delta, abs(float(a) - float(b)))
    return delta


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small reference / fewer rounds (CI smoke)")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_serving.json")
    ap.add_argument("--batch-sizes", type=int, nargs="+", default=None)
    ap.add_argument("--queries", type=int, default=None,
                    help="total queries per batch-size round")
    ap.add_argument("--sites", type=int, default=None)
    args = ap.parse_args(argv)

    if args.quick:
        batch_sizes = args.batch_sizes or [1, 4]
        n_queries = args.queries or 8
        n_sites = args.sites or 200
    else:
        batch_sizes = args.batch_sizes or list(DEFAULT_BATCH_SIZES)
        n_queries = args.queries or 32
        n_sites = args.sites or 600

    ref_aln, ref_tree, seq = build_reference(n_sites)

    report = {
        "benchmark": "bench_serving",
        "description": (
            "placement-server latency/throughput vs cross-query batch size"
        ),
        "env": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "batch_size is the number of concurrent HTTP clients; the "
            "tenant dispatcher fuses their queries into single lockstep "
            "wave dispatches. qps and lnl_delta are informational; the "
            "p50/p99 latency metrics are the regression-gated ones."
        ),
        "entries": [],
    }
    failures = 0

    server = PlacementServer(
        port=0, max_batch=max(batch_sizes), batch_wait_s=0.01,
        backend=BACKEND,
    )
    try:
        server.add_tenant("bench", ref_aln, ref_tree)
        for batch_size in batch_sizes:
            latencies, wall, sample = run_round(
                server.url, seq, batch_size, n_queries, f"b{batch_size}"
            )
            delta = parity_delta(
                ref_aln, ref_tree, seq, sample["doc"], sample["name"]
            )
            identical = delta == 0.0
            if not identical:
                failures += 1
                print(f"  !! batch={batch_size}: served != offline "
                      f"(delta={delta!r})")
            p50 = float(np.percentile(latencies, 50))
            p99 = float(np.percentile(latencies, 99))
            qps = n_queries / wall if wall else 0.0
            print(
                f"[batch {batch_size:>2}] {n_queries} queries: "
                f"p50={p50 * 1e3:.1f}ms p99={p99 * 1e3:.1f}ms "
                f"qps={qps:.2f} bit_identical={identical}"
            )
            report["entries"].append({
                "config": {
                    "batch_size": batch_size,
                    "queries": n_queries,
                    "sites": n_sites,
                    "taxa": N_TAXA,
                    "backend": BACKEND,
                },
                "metrics": {
                    "p50_latency_s": p50,
                    "p99_latency_s": p99,
                    "qps": qps,
                    "lnl_delta": delta,
                    "bit_identical": 1.0 if identical else 0.0,
                },
            })
    finally:
        server.stop()

    report["all_bit_identical"] = failures == 0
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
