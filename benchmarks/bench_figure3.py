"""E3 — Figure 3: per-kernel MIC-vs-CPU speedups.

Benchmarks the VM execution of each vectorized kernel on the simulated
MIC and asserts the reproduced speedup shape: ``derivativeSum`` (the
pure streaming kernel) tops out near the paper's 2.8x while the
mixed-arithmetic kernels stay at or below ~2x.
"""

import pytest

from repro.core import kernels as ref
from repro.core.vectorized import (
    emit_derivative_core,
    emit_derivative_sum,
    emit_evaluate,
    emit_newview_inner_inner,
    prepare_derivative_consts,
    prepare_evaluate_consts,
    prepare_newview_consts,
    setup_buffers,
)
from repro.harness.figure3 import figure3_speedups
from repro.mic.device import xeon_phi_device
from repro.perf.calibration import PAPER_FIGURE3


def _mic_setup(kernel_problem, kernel):
    eigen, gamma, zl, zr, w = kernel_problem
    vm = xeon_phi_device().make_vm()
    if kernel == "derivative_core":
        sumbuf = ref.derivative_sum(zl, zr)
        bufs = setup_buffers(vm, sumbuf, zr, weights=w)
        prepare_derivative_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.3)
        prog = emit_derivative_core(vm.isa, bufs, site_block=vm.isa.width)
    else:
        bufs = setup_buffers(vm, zl, zr, weights=w)
        if kernel == "derivative_sum":
            prog = emit_derivative_sum(vm.isa, bufs)
        elif kernel == "evaluate":
            prepare_evaluate_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.3)
            prog = emit_evaluate(vm.isa, bufs)
        else:
            prepare_newview_consts(vm, bufs, eigen, gamma.rates, 0.2, 0.4)
            prog = emit_newview_inner_inner(vm.isa, bufs)
    return vm, prog


@pytest.mark.parametrize(
    "kernel", ["newview", "evaluate", "derivative_sum", "derivative_core"]
)
def test_kernel_on_simulated_mic(benchmark, kernel_problem, kernel):
    vm, prog = _mic_setup(kernel_problem, kernel)
    stats = benchmark(vm.run, prog)
    assert stats.cycles > 0


def test_figure3_speedup_shape(benchmark):
    speedups = {s.kernel: s for s in benchmark(figure3_speedups)}
    assert max(speedups.values(), key=lambda s: s.model).kernel == "derivative_sum"
    for kernel, target in PAPER_FIGURE3.items():
        assert speedups[kernel].model == pytest.approx(target, rel=0.10), kernel
