"""Workload generation: the paper's INDELible-equivalent datasets.

Benchmarks the simulator that produces the Table III alignments (15
taxa, 10K-4,000K sites) and sanity-checks the generated data's
statistical shape.  The two smallest paper sizes are generated for real;
the full 4M-site alignment is exercised through the same code path at
reduced width by the test suite (generation is linear in sites).
"""

import numpy as np
import pytest

from repro.harness.datasets import PAPER_N_TAXA, paper_dataset
from repro.phylo import alignment_stats


@pytest.mark.parametrize("n_sites", [10_000, 100_000])
def test_generate_paper_dataset(benchmark, n_sites):
    sim = benchmark.pedantic(
        paper_dataset, args=(n_sites,), rounds=1, iterations=1
    )
    assert sim.alignment.n_taxa == PAPER_N_TAXA
    assert sim.alignment.n_sites == n_sites
    # the simulated data must carry phylogenetic signal: more unique
    # patterns than taxa, but far fewer than a random matrix would have
    pat = sim.alignment.compress()
    assert PAPER_N_TAXA < pat.n_patterns <= n_sites


def test_dataset_statistics(benchmark):
    sim = paper_dataset(20_000)
    stats = benchmark(alignment_stats, sim.alignment)
    # GTR+Gamma data: composition near the generating frequencies
    assert stats.base_composition["A"] == pytest.approx(0.3, abs=0.05)
    assert stats.base_composition["C"] == pytest.approx(0.2, abs=0.05)
    # Gamma rate variation leaves a visible constant-site fraction
    assert 0.02 < stats.constant_fraction < 0.6
    assert stats.informative_fraction > 0.2


def test_trace_scaling_assumption(benchmark):
    """The trace-driven design's premise: the kernel mix of a search is
    insensitive to alignment width (calls stay within a small factor
    while sites change 3x)."""
    from repro.perf.trace import trace_from_search
    from repro.search import SearchConfig, ml_search
    from repro.phylo import simulate_dataset

    def traces():
        out = []
        for sites in (150, 450):
            sim = simulate_dataset(n_taxa=8, n_sites=sites, seed=500)
            res = ml_search(
                sim.alignment,
                config=SearchConfig(radii=(3,), max_spr_rounds=3,
                                    optimize_exchangeabilities=False),
            )
            out.append(trace_from_search(res))
        return out

    small, large = benchmark.pedantic(traces, rounds=1, iterations=1)
    for kernel in ("newview", "derivative_core"):
        ratio = large.calls[kernel] / max(1, small.calls[kernel])
        assert 0.3 < ratio < 3.0, (kernel, ratio)
