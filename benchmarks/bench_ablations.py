"""E7-E10 — ablations for the paper's Section V design findings."""

import pytest

from repro.harness.ablations import (
    flat_vs_hybrid,
    forkjoin_vs_examl,
    offload_vs_native,
    partition_count_sweep,
    prefetch_distance_sweep,
    site_blocking_ablation,
)


def test_offload_vs_native(benchmark):
    """E7 (Sec. V-C): native ~2x faster than offload on small alignments."""
    res = benchmark(offload_vs_native, n_sites=10_000)
    assert res.ratio > 1.8
    # penalty shrinks as per-call compute grows
    assert offload_vs_native(n_sites=1_000_000).ratio < res.ratio


def test_flat_mpi_vs_hybrid(benchmark):
    """E8 (Sec. V-D): 120 flat ranks = substantial slowdown vs 2x118."""
    res = benchmark(flat_vs_hybrid)
    assert res.ratio > 2.0


def test_forkjoin_vs_examl(benchmark):
    """E9 (Sec. V-D): fork-join's 2 syncs/kernel lose to ExaML's scheme."""
    res = benchmark(forkjoin_vs_examl)
    assert res.ratio > 1.1


def test_prefetch_distance_sweep(benchmark):
    """E10 (Sec. V-B6): manual prefetching matters for streaming kernels."""
    sweep = benchmark(prefetch_distance_sweep, distances=(0, 2, 8), n_sites=256)
    assert sweep[0] > 3 * sweep[2]  # no prefetch = latency-bound
    assert sweep[8] == pytest.approx(sweep[2], rel=0.10)  # saturates


def test_site_blocking(benchmark):
    """Sec. V-B4: blocking 8 sites replaces 8 scalar divides with one
    vector divide in derivativeCore."""
    res = benchmark(site_blocking_ablation, n_sites=256)
    assert res.ratio > 1.1


def test_partition_count_sweep(benchmark):
    """E11 (Sec. V-A): many partitions degrade MIC performance through
    per-partition serial work and shrinking parallel blocks."""
    sweep = benchmark(partition_count_sweep, counts=(1, 16, 256))
    assert sweep[16] > sweep[1]
    assert sweep[256] > 3 * sweep[1]


def test_rank_thread_sweep(benchmark):
    """E12 (Sec. VI-B2): the hybrid 2x118 layout is (near-)optimal;
    hybrid layouts dominate both extremes."""
    from repro.harness.ablations import rank_thread_sweep

    sweep = benchmark(rank_thread_sweep)
    best = min(sweep.values())
    # 2x118 within 5% of the best layout (the paper's chosen setting;
    # it also observed more-ranks-fewer-threads "yielded better results
    # in some tests")
    assert sweep[(2, 118)] <= 1.05 * best
    # both extremes lose: flat MPI badly, pure OpenMP mildly
    assert sweep[(120, 1)] > 1.5 * best
    assert sweep[(1, 236)] > sweep[(2, 118)]
