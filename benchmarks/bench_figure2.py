"""E2 — Figure 2: pragma auto-vectorization vs intrinsics."""

import numpy as np

from repro.harness.figure2 import figure2_programs


def test_figure2_identical_streams(benchmark):
    pragma_prog, intr_prog, _, _ = benchmark(figure2_programs)
    assert pragma_prog.disassembly() == intr_prog.disassembly()
    assert len(pragma_prog) == 8  # 2 chunks x (2 loads + mul + store)


def test_figure2_vm_execution(benchmark):
    pragma_prog, _, vm, arrays = figure2_programs()
    left = np.arange(1.0, 17.0)
    right = np.linspace(0.5, 2.0, 16)
    vm.write_array(arrays["left"], left)
    vm.write_array(arrays["right"], right)
    stats = benchmark(vm.run, pragma_prog)
    np.testing.assert_allclose(vm.read_array(arrays["sum"], 16), left * right)
    assert stats.cycles > 0
