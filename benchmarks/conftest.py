"""Shared benchmark fixtures.

Benchmarks regenerate the paper's artefacts under pytest-benchmark
timing; each module asserts the reproduced *shape* (who wins, by what
factor, where crossovers fall) against the paper's published values.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phylo import GammaRates, gtr


@pytest.fixture(scope="session")
def kernel_problem():
    """Random CLA pair + model used by the kernel benchmarks."""
    rng = np.random.default_rng(1234)
    n_sites = 64
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    gamma = GammaRates(0.8, 4)
    z_left = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    z_right = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    weights = np.ones(n_sites)
    return model.eigen(), gamma, z_left, z_right, weights
