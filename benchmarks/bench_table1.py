"""E1 — Table I: platform specification sheet."""

import pytest

from repro.harness.table1 import baseline_premiums, render_table1, table1_rows


def test_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    assert "1S Xeon Phi 5110P" in text
    assert len(table1_rows()) == 5


def test_table1_baseline_premiums(benchmark):
    prem = benchmark(baseline_premiums)
    # the paper's Sec. VI-A1 claims: ~30% price, ~15% TDP premium
    assert prem["price_premium"] == pytest.approx(0.30, abs=0.05)
    assert prem["tdp_premium"] == pytest.approx(0.15, abs=0.03)
