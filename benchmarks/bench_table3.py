"""E4 — Table III: ExaML execution times and speedups across systems."""

import pytest

from repro.harness.paper_values import DATASET_SIZES
from repro.harness.table3 import compute_table3


def test_table3_regeneration(benchmark):
    rows = benchmark(compute_table3)
    by_name = {r.system: r for r in rows}

    # Baseline row is unity by construction.
    for s in by_name["2S Xeon E5-2680"].speedups:
        assert s == pytest.approx(1.0)

    mic1 = by_name["1S Xeon Phi 5110P"]
    mic2 = by_name["2S Xeon Phi 5110P"]
    sizes = list(DATASET_SIZES)

    # Shape: CPU wins at 10K, MIC crosses over near 100K, stabilises ~2x.
    assert mic1.speedups[sizes.index(10_000)] < 0.5
    assert 0.9 < mic1.speedups[sizes.index(100_000)] < 1.3
    assert 1.9 < mic1.speedups[sizes.index(4_000_000)] < 2.2

    # Dual MIC: worst at 10K, best at 4000K, approaching ~3.7-4x.
    assert mic2.speedups[sizes.index(10_000)] < mic1.speedups[sizes.index(10_000)] + 0.05
    assert 3.4 < mic2.speedups[sizes.index(4_000_000)] < 4.2

    # Every model point within 35% of the paper's measurement.
    for row in rows:
        for model, paper in zip(row.speedups, row.paper_speedups):
            assert model == pytest.approx(paper, rel=0.35), row.system

    # Speedup grows monotonically with alignment size for both MIC rows.
    for row in (mic1, mic2):
        assert all(b > a for a, b in zip(row.speedups, row.speedups[1:]))
