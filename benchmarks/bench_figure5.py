"""E6 — Figure 5: relative energy savings vs the CPU baseline."""

import pytest

from repro.harness.figure5 import compute_figure5, paper_figure5
from repro.harness.paper_values import DATASET_SIZES


def test_figure5_regeneration(benchmark):
    savings = benchmark(compute_figure5)
    sizes = list(DATASET_SIZES)
    one = savings["1S Xeon Phi 5110P"]
    two = savings["2S Xeon Phi 5110P"]

    # 1 MIC becomes more energy-efficient around 100K sites...
    assert one[sizes.index(50_000)] < 1.0
    assert one[sizes.index(250_000)] > 1.0
    # ...and saves ~2.3x on the largest datasets.
    assert one[-1] == pytest.approx(2.3, abs=0.25)

    # Adding a second card reduces energy efficiency at every size...
    assert all(t < o for t, o in zip(two, one))
    # ...but the dual-MIC setup still beats the CPUs above 500K sites.
    assert two[sizes.index(1_000_000)] > 1.0

    # Each MIC point within 35% of the value implied by the paper's data.
    paper = paper_figure5()
    for name in ("1S Xeon Phi 5110P", "2S Xeon Phi 5110P"):
        for model, pub in zip(savings[name], paper[name]):
            assert model == pytest.approx(pub, rel=0.35), name
