#!/usr/bin/env python
"""All-branch gradient benchmark: one bidirectional traversal vs 2N-3
per-branch ``derivativeSum`` sweeps.

Both contenders start from the same validated engine (post-order CLAs
valid at the default virtual root) and produce first/second lnL
derivatives for every branch:

* **per-branch cold** is the classic baseline without incremental CLA
  reuse: every one of the ``2N - 3`` re-rootings pays a full post-order
  traversal (``N - 2`` newviews), O(N^2) kernel calls total;
* **per-branch warm** is the same loop on this repo's signature-gated
  engine, which reuses CLAs across re-rootings and only recomputes
  orientation flips — super-linear (~N log N on a balanced tree) but no
  longer quadratic;
* **one-traversal** (``all_branch_gradients``) reuses the valid
  post-order CLAs and runs a single pre-order up-sweep: ``2N - 4``
  pre-order partials plus ``2N - 3`` fused edge gradients — O(N) kernel
  calls, no re-rooting.

A ``taxa_scaling`` section sweeps the taxon count at a fixed small width
so the committed JSON shows the O(N^2) -> O(N) derivative-phase
kernel-call collapse directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_gradients.py [--quick]
        [--out BENCH_gradients.json] [--sites 1000 10000 100000]

Writes a JSON report (default ``BENCH_gradients.json``) and exits
non-zero if the two contenders' derivatives diverge beyond 1e-8
(relative), if the one-traversal path fails its exact O(N) kernel-call
budget, or if the per-branch path somehow stops being super-linear.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.engine import LikelihoodEngine  # noqa: E402
from repro.phylo.alignment import PatternAlignment  # noqa: E402
from repro.phylo.models import gtr  # noqa: E402
from repro.phylo.rates import GammaRates  # noqa: E402
from repro.phylo.tree import Tree  # noqa: E402

DEFAULT_SITES = (1_000, 10_000, 100_000)
N_TAXA = 16
BRANCH_LENGTH = 0.1
BACKEND = "blocked"


def balanced_tree(n_leaves: int, length: float = BRANCH_LENGTH) -> Tree:
    """Complete balanced unrooted topology with uniform branch lengths."""
    tree = Tree()
    level = [tree.add_node(f"t{i}") for i in range(n_leaves)]
    while len(level) > 2:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            parent = tree.add_node()
            tree.add_edge(parent, level[i], length)
            tree.add_edge(parent, level[i + 1], length)
            nxt.append(parent)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    tree.add_edge(level[0], level[1], length)
    return tree


def make_patterns(n_taxa: int, n_sites: int, seed: int = 2014) -> PatternAlignment:
    """Random unambiguous DNA, kept uncompressed (patterns == sites)."""
    rng = np.random.default_rng(seed)
    data = rng.choice(
        np.array([1, 2, 4, 8], dtype=np.uint32), size=(n_taxa, n_sites)
    )
    return PatternAlignment(
        taxa=[f"t{i}" for i in range(n_taxa)],
        data=data,
        weights=np.ones(n_sites),
        site_to_pattern=np.arange(n_sites),
    )


def make_engine(n_sites: int) -> LikelihoodEngine:
    return LikelihoodEngine(
        make_patterns(N_TAXA, n_sites), balanced_tree(N_TAXA),
        gtr(), GammaRates(0.8, 4), backend=BACKEND,
    )


def per_branch_gradients(
    engine: LikelihoodEngine, cold: bool = False
) -> dict[int, tuple]:
    """The pre-IR path: re-root ``derivativeSum`` at every branch.

    ``cold=True`` drops the CLA cache before each branch, modelling the
    classic implementation that re-traverses the whole tree per
    re-rooting (no signature-gated incremental reuse) — the O(N^2)
    baseline the one-traversal sweep replaces.
    """
    out = {}
    for eid in sorted(engine.tree.edge_ids):
        if cold:
            engine.drop_caches()
        sumbuf = engine.edge_sum_buffer(eid)
        _, d1, d2 = engine.branch_derivatives(
            sumbuf, engine.tree.edge(eid).length
        )
        out[eid] = (d1, d2)
    return out


def derivative_phase_calls(engine: LikelihoodEngine) -> dict[str, int]:
    """Merged kernel calls since the last counter reset."""
    return {k: n for k, n in engine.counters.merged().items() if n}


def bench_width(n_sites: int, repeats: int) -> dict:
    n_branches = 2 * N_TAXA - 3

    def run(mode) -> tuple[float, dict[int, tuple], dict[str, int]]:
        best, result, calls = float("inf"), None, None
        for _ in range(repeats):
            engine = make_engine(n_sites)
            engine.log_likelihood()  # both contenders start from valid CLAs
            engine.reset_profile()
            t0 = time.perf_counter()
            result = mode(engine)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best, calls = elapsed, derivative_phase_calls(engine)
        return best, result, calls

    cold_s, _, cold_calls = run(lambda e: per_branch_gradients(e, cold=True))
    naive_s, naive, naive_calls = run(per_branch_gradients)
    sweep_s, sweep, sweep_calls = run(lambda e: e.all_branch_gradients())

    worst = 0.0
    for eid in naive:
        for a, b in zip(sweep[eid], naive[eid]):
            worst = max(worst, abs(a - b) / max(abs(b), 1.0))

    return {
        "sites": n_sites,
        "n_taxa": N_TAXA,
        "n_branches": n_branches,
        "per_branch_cold_s": cold_s,
        "per_branch_s": naive_s,
        "one_traversal_s": sweep_s,
        "speedup_one_traversal": naive_s / sweep_s,
        "speedup_vs_cold": cold_s / sweep_s,
        "max_rel_derivative_diff": worst,
        "per_branch_cold_calls": cold_calls,
        "per_branch_calls": naive_calls,
        "one_traversal_calls": sweep_calls,
        "per_branch_cold_total_calls": sum(cold_calls.values()),
        "per_branch_total_calls": sum(naive_calls.values()),
        "one_traversal_total_calls": sum(sweep_calls.values()),
    }


def taxa_scaling(taxa: tuple[int, ...], n_sites: int = 64) -> list[dict]:
    """Derivative-phase kernel calls vs taxon count for every contender."""
    rows = []
    for n_taxa in taxa:
        engine = LikelihoodEngine(
            make_patterns(n_taxa, n_sites), balanced_tree(n_taxa),
            gtr(), GammaRates(0.8, 4), backend=BACKEND,
        )

        def count(mode) -> int:
            engine.log_likelihood()
            engine.reset_profile()
            mode(engine)
            return sum(engine.counters.merged().values())

        rows.append({
            "n_taxa": n_taxa,
            "n_branches": 2 * n_taxa - 3,
            "per_branch_cold_calls": count(
                lambda e: per_branch_gradients(e, cold=True)
            ),
            "per_branch_calls": count(per_branch_gradients),
            "one_traversal_calls": count(lambda e: e.all_branch_gradients()),
        })
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller widths and fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--sites", type=int, nargs="+", default=None,
        help="alignment widths to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per width (default: 5, or 2 with --quick)",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_gradients.json",
        help="JSON report path",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (2 if args.quick else 5)
    sites = args.sites or ([1_000, 10_000] if args.quick else list(DEFAULT_SITES))

    rows = []
    print(f"{'sites':>9}  {'cold':>12}  {'per-branch':>12}  {'one-trav':>12}  "
          f"{'speedup':>7}  {'calls (cold/warm/one)':>21}  {'maxdiff':>9}")
    for n_sites in sorted(sites):
        row = bench_width(n_sites, repeats)
        rows.append(row)
        print(
            f"{n_sites:>9}  "
            f"{row['per_branch_cold_s'] * 1e3:>10.3f}ms  "
            f"{row['per_branch_s'] * 1e3:>10.3f}ms  "
            f"{row['one_traversal_s'] * 1e3:>10.3f}ms  "
            f"{row['speedup_one_traversal']:>6.2f}x  "
            f"{row['per_branch_cold_total_calls']:>6}/"
            f"{row['per_branch_total_calls']}/"
            f"{row['one_traversal_total_calls']:<4}  "
            f"{row['max_rel_derivative_diff']:>9.2e}"
        )

    scaling = taxa_scaling((8, 16, 32, 64) if args.quick else (8, 16, 32, 64, 128))
    print("\nderivative-phase kernel calls vs taxa (cold O(N^2) -> one-traversal O(N)):")
    for s in scaling:
        print(
            f"  N={s['n_taxa']:>4}: cold {s['per_branch_cold_calls']:>6}  "
            f"warm {s['per_branch_calls']:>5}  "
            f"one-traversal {s['one_traversal_calls']:>4}"
        )

    report = {
        "benchmark": (
            "all-branch derivatives from valid CLAs: 2N-3 re-rooted "
            "derivativeSum sweeps vs one bidirectional traversal, "
            "balanced tree, blocked backend, best of repeats"
        ),
        "backend": BACKEND,
        "n_taxa": N_TAXA,
        "repeats": repeats,
        "quick": args.quick,
        "results": rows,
        "taxa_scaling": scaling,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failed = False
    n_branches = 2 * N_TAXA - 3
    linear_budget = (N_TAXA - 2) + (2 * N_TAXA - 4) + n_branches
    for row in rows:
        if row["max_rel_derivative_diff"] > 1e-8:
            print(
                f"FAIL: derivative divergence "
                f"{row['max_rel_derivative_diff']:.2e} at {row['sites']} "
                "sites (gate: 1e-8)",
                file=sys.stderr,
            )
            failed = True
        one = row["one_traversal_calls"]
        if one.get("preorder", 0) != 2 * N_TAXA - 4 or one.get(
            "edge_gradient", 0
        ) != n_branches:
            print(
                f"FAIL: one-traversal kernel mix {one} is not the O(N) "
                f"budget (preorder {2 * N_TAXA - 4}, edge_gradient "
                f"{n_branches}) at {row['sites']} sites",
                file=sys.stderr,
            )
            failed = True
        if row["one_traversal_total_calls"] > linear_budget:
            print(
                f"FAIL: one-traversal used "
                f"{row['one_traversal_total_calls']} kernel calls "
                f"(O(N) budget: {linear_budget}) at {row['sites']} sites",
                file=sys.stderr,
            )
            failed = True
        if row["per_branch_total_calls"] < 2 * row["one_traversal_total_calls"]:
            print(
                "FAIL: per-branch path no longer super-linear "
                f"({row['per_branch_total_calls']} calls) — benchmark "
                "premise broken",
                file=sys.stderr,
            )
            failed = True
        quadratic_floor = n_branches * (N_TAXA - 2)
        if row["per_branch_cold_total_calls"] < quadratic_floor:
            print(
                f"FAIL: cold per-branch used only "
                f"{row['per_branch_cold_total_calls']} calls "
                f"(expected >= {quadratic_floor}) — no longer the O(N^2) "
                "baseline",
                file=sys.stderr,
            )
            failed = True
    # the scaling sweep must show quadratic cold growth vs linear sweep
    big = scaling[-1]
    if big["per_branch_cold_calls"] < big["n_branches"] * (big["n_taxa"] - 2):
        print("FAIL: taxa scaling lost its quadratic cold baseline",
              file=sys.stderr)
        failed = True
    if big["one_traversal_calls"] > 5 * big["n_taxa"]:
        print(
            f"FAIL: one-traversal not O(N): {big['one_traversal_calls']} "
            f"calls at N={big['n_taxa']}",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    last = rows[-1]
    print(
        f"OK: one traversal = {last['one_traversal_total_calls']} kernel "
        f"calls vs {last['per_branch_total_calls']} per-branch "
        f"({last['speedup_one_traversal']:.2f}x wall at {last['sites']} sites), "
        "parity 1e-8"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
