#!/usr/bin/env python
"""Strong-scaling benchmark for real parallel PLF execution (PR 5).

Times full log-likelihood evaluations on the fork-join engine's real
substrates — ``threads`` (in-process pool) and ``processes`` (spawn-once
worker pool over a shared-memory arena) — against the serial engine, at
alignment widths spanning the paper's Table III range, and verifies
that every parallel result is **bit-identical** to the serial one.

Honesty note: the evaluation container for this repository exposes a
single CPU core (``os.cpu_count()`` is recorded in the report), so no
wall-clock speedup is physically possible here; the numbers quantify
the *overhead* of the parallel machinery (barrier latency, slice
dispatch, shared-memory reduction) rather than its scaling.  On a real
multi-core host the same harness produces the strong-scaling curve.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
        [--out BENCH_parallel.json] [--sites 10000 100000 1000000]
        [--workers 1 2 4 8] [--reps 2]

Writes a JSON report (default ``BENCH_parallel.json`` at the repo root)
and exits non-zero if any parallel evaluation deviates from the serial
value by even one ULP.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import LikelihoodEngine  # noqa: E402
from repro.parallel import (  # noqa: E402
    ForkJoinEngine,
    active_arena_segments,
)
from repro.perf.costmodel import measured_sync_cost  # noqa: E402
from repro.phylo import GammaRates, gtr, simulate_dataset  # noqa: E402
from repro.phylo.alignment import PatternAlignment  # noqa: E402

DEFAULT_SITES = (10_000, 100_000, 1_000_000)
DEFAULT_WORKERS = (1, 2, 4, 8)
MODES = ("threads", "processes")
N_TAXA = 8


def synthetic_patterns(n_patterns: int, seed: int = 2014) -> PatternAlignment:
    """Uncompressible random DNA patterns (weight 1 each).

    Pattern compression would collapse a simulated 1M-site alignment of
    8 taxa far below 1M unique columns; random unit-weight patterns keep
    the per-site workload equal to the nominal width, which is what a
    kernel-throughput benchmark should measure.
    """
    rng = np.random.default_rng(seed)
    # DNA tip codes are bitmasks: A=1, C=2, G=4, T=8
    data = np.left_shift(
        1, rng.integers(0, 4, size=(N_TAXA, n_patterns))
    ).astype(np.int8)
    return PatternAlignment(
        taxa=[f"taxon{i:02d}" for i in range(N_TAXA)],
        data=data,
        weights=np.ones(n_patterns),
        site_to_pattern=np.arange(n_patterns),
    )


def timed_eval(engine, reps: int) -> tuple[float, float]:
    """(best seconds, lnl) over ``reps`` cold evaluations."""
    best = float("inf")
    lnl = None
    for _ in range(reps):
        engine.drop_caches()
        t0 = time.perf_counter()
        lnl = engine.log_likelihood()
        best = min(best, time.perf_counter() - t0)
    return best, lnl


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small widths / fewer configs (CI smoke)")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_parallel.json")
    ap.add_argument("--sites", type=int, nargs="+", default=None)
    ap.add_argument("--workers", type=int, nargs="+", default=None)
    ap.add_argument("--reps", type=int, default=2)
    args = ap.parse_args(argv)

    if args.quick:
        sites_list = args.sites or [2_000, 20_000]
        workers_list = args.workers or [1, 2]
        reps = 1
    else:
        sites_list = args.sites or list(DEFAULT_SITES)
        workers_list = args.workers or list(DEFAULT_WORKERS)
        reps = args.reps

    tree = simulate_dataset(n_taxa=N_TAXA, n_sites=16, seed=7).tree
    model, gamma = gtr(), GammaRates(0.9, 4)

    report = {
        "benchmark": "bench_parallel",
        "description": "strong scaling of real fork-join PLF execution",
        "env": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "cpu_count above is the honest hardware budget of this run; "
            "with a single core the parallel substrates cannot beat the "
            "serial engine, so treat per-worker times as overhead "
            "measurements, not scaling results"
        ),
        "reps": reps,
        "configs": [],
    }
    failures = 0

    for n_sites in sites_list:
        pat = synthetic_patterns(n_sites)
        serial = LikelihoodEngine(pat, tree.copy(), model, gamma)
        serial_s, serial_lnl = timed_eval(serial, reps)
        print(f"[{n_sites:>9,} sites] serial: {serial_s:.3f}s "
              f"lnL={serial_lnl:.2f}")
        entry = {
            "sites": n_sites,
            "serial_seconds": serial_s,
            "serial_lnl": serial_lnl,
            "modes": {},
        }
        for mode in MODES:
            rows = []
            for n in workers_list:
                with ForkJoinEngine(
                    pat, tree.copy(), model, gamma, n_threads=n,
                    execution=mode, backend="reference",
                ) as fj:
                    par_s, par_lnl = timed_eval(fj, reps)
                    delta = par_lnl - serial_lnl
                    sync = measured_sync_cost(fj.barrier_stats)
                    rows.append({
                        "workers": n,
                        "seconds": par_s,
                        "speedup": serial_s / par_s if par_s else 0.0,
                        "lnl_delta_vs_serial": delta,
                        "bit_identical": delta == 0.0,
                        "barrier_stats": fj.barrier_stats.to_dict(),
                        "measured_sync": {
                            "regions": sync.regions,
                            "mean_region_s": sync.mean_region_s,
                            "mean_overhead_s": sync.mean_overhead_s,
                            "overhead_fraction": sync.overhead_fraction,
                        },
                    })
                    if delta != 0.0:
                        failures += 1
                        print(f"  !! {mode} x{n}: delta={delta!r}")
                    print(f"  {mode:>9} x{n}: {par_s:.3f}s "
                          f"speedup={rows[-1]['speedup']:.2f} "
                          f"overhead/region="
                          f"{sync.mean_overhead_s * 1e6:.0f}us")
            entry["modes"][mode] = rows
        report["configs"].append(entry)
        leaked = active_arena_segments()
        if leaked:
            failures += 1
            print(f"  !! leaked shared-memory segments: {leaked}")

    report["all_bit_identical"] = failures == 0
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
