#!/usr/bin/env python
"""Observability overhead benchmark: enabled vs disabled dispatch cost.

The tracing subsystem promises **zero cost while disabled**: every
instrumented call site guards on the module-level ``repro.obs.spans
.ENABLED`` flag before allocating anything, so a disabled run pays one
attribute load + branch ("probe") per instrumentation point.  This
benchmark quantifies that promise three ways:

1. **probe cost** — a tight loop over the exact guard expression the
   kernel seam uses, yielding nanoseconds per probe;
2. **dispatch cost** — cold full-tree ``ensure_valid`` wall time per
   kernel dispatch with tracing *disabled* (the denominator that
   matters: the guard rides on every dispatch);
3. **enabled cost** — the same workload with tracing *enabled*, showing
   what turning the tracer on actually costs (span append + metrics
   update per dispatch).

The acceptance gate holds the *disabled* overhead —
``probe_ns x probes_per_dispatch / disabled_dispatch_ns`` — below 2%.
The probe-based formulation is deliberate: an end-to-end
disabled-vs-baseline wall-clock diff of <2% drowns in scheduler noise
on shared CI runners, while the probe cost itself is stable to a few
nanoseconds.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]
        [--out BENCH_obs.json]

Writes a JSON report (default ``BENCH_obs.json``) and exits non-zero
when the disabled-overhead gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.engine import LikelihoodEngine  # noqa: E402
from repro.obs import spans as obs_spans  # noqa: E402
from repro.obs import disable, enable, get_tracer  # noqa: E402
from repro.phylo.alignment import PatternAlignment  # noqa: E402
from repro.phylo.models import gtr  # noqa: E402
from repro.phylo.rates import GammaRates  # noqa: E402
from repro.phylo.tree import Tree  # noqa: E402

#: Guard evaluations a single kernel dispatch performs on the hot path
#: (one in ``_BackendBase._finish``; wave/plan guards amortise over many
#: dispatches but are counted here anyway, erring on the high side).
PROBES_PER_DISPATCH = 3

#: The acceptance gate on disabled overhead.
MAX_DISABLED_OVERHEAD = 0.02

N_TAXA = 8
N_SITES = 2000
BACKEND = "blocked"


def balanced_tree(n_leaves: int, length: float = 0.1) -> Tree:
    """Complete balanced unrooted topology with uniform branch lengths."""
    tree = Tree()
    level = [tree.add_node(f"t{i}") for i in range(n_leaves)]
    while len(level) > 2:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            parent = tree.add_node()
            tree.add_edge(parent, level[i], length)
            tree.add_edge(parent, level[i + 1], length)
            nxt.append(parent)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    tree.add_edge(level[0], level[1], length)
    return tree


def make_patterns(n_taxa: int, n_sites: int, seed: int = 2014) -> PatternAlignment:
    """Random unambiguous DNA, kept uncompressed (patterns == sites)."""
    rng = np.random.default_rng(seed)
    data = rng.choice(
        np.array([1, 2, 4, 8], dtype=np.uint32), size=(n_taxa, n_sites)
    )
    return PatternAlignment(
        taxa=[f"t{i}" for i in range(n_taxa)],
        data=data,
        weights=np.ones(n_sites),
        site_to_pattern=np.arange(n_sites),
    )


def probe_cost_ns(loops: int) -> float:
    """Nanoseconds per disabled-guard evaluation, best of 5 runs."""
    disable()
    mod = obs_spans
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        hits = 0
        for _ in range(loops):
            if mod.ENABLED:  # the exact guard instrumented code uses
                hits += 1
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        assert hits == 0
    return best / loops * 1e9


def dispatch_cost(engine: LikelihoodEngine, root: int, repeats: int) -> tuple[float, int]:
    """(median seconds, dispatch count) for one cold full validation.

    Median, not best-of: the enabled/disabled comparison divides two of
    these numbers, and the minimum of two noisy samples underflows —
    the committed report once showed a *negative* enabled overhead.
    The median is a consistent estimator of the same central cost on
    both sides of the ratio.
    """
    times = []
    dispatches = 0
    for _ in range(repeats):
        engine.drop_caches()
        before = engine.profile.total_calls()
        t0 = time.perf_counter()
        engine.ensure_valid(root)
        times.append(time.perf_counter() - t0)
        dispatches = engine.profile.total_calls() - before
    times.sort()
    n = len(times)
    median = (
        times[n // 2] if n % 2 else (times[n // 2 - 1] + times[n // 2]) / 2
    )
    return median, dispatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer loops and repeats (CI smoke)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_obs.json",
                        help="JSON report path")
    args = parser.parse_args(argv)
    loops = 200_000 if args.quick else 2_000_000
    repeats = 3 if args.quick else 7

    probe_ns = probe_cost_ns(loops)

    engine = LikelihoodEngine(
        make_patterns(N_TAXA, N_SITES), balanced_tree(N_TAXA),
        gtr(), GammaRates(0.8, 4), backend=BACKEND,
    )
    root = engine.default_edge()
    engine.ensure_valid(root)  # warm-up / allocation

    disable()
    disabled_s, dispatches = dispatch_cost(engine, root, repeats)

    enable("bench_obs")
    enabled_s, _ = dispatch_cost(engine, root, repeats)
    n_events = get_tracer().n_events
    disable()

    disabled_ns_per_dispatch = disabled_s / dispatches * 1e9
    disabled_overhead = (
        probe_ns * PROBES_PER_DISPATCH / disabled_ns_per_dispatch
    )
    # Clamp at zero: enabled tracing cannot genuinely be faster than
    # disabled, so a negative ratio is residual measurement noise.
    enabled_overhead = max(0.0, enabled_s / disabled_s - 1.0)

    report = {
        "benchmark": (
            "obs overhead: guard probes vs cold ensure_valid dispatch, "
            "balanced tree, blocked backend, median of repeats"
        ),
        "backend": BACKEND,
        "n_taxa": N_TAXA,
        "n_sites": N_SITES,
        "repeats": repeats,
        "quick": args.quick,
        "probe_ns": probe_ns,
        "probes_per_dispatch": PROBES_PER_DISPATCH,
        "dispatches_per_validation": dispatches,
        "disabled_s": disabled_s,
        "disabled_ns_per_dispatch": disabled_ns_per_dispatch,
        "enabled_s": enabled_s,
        "enabled_events_per_validation": n_events,
        "disabled_overhead_ratio": disabled_overhead,
        "enabled_overhead_ratio": enabled_overhead,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    print(f"probe:     {probe_ns:8.2f} ns per disabled guard")
    print(f"dispatch:  {disabled_ns_per_dispatch:8.0f} ns per kernel "
          f"dispatch ({dispatches} dispatches per validation)")
    print(f"disabled overhead: {disabled_overhead:.4%}  "
          f"(gate: < {MAX_DISABLED_OVERHEAD:.0%})")
    print(f"enabled overhead:  {enabled_overhead:+.2%} wall "
          f"({n_events} events recorded)")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if disabled_overhead >= MAX_DISABLED_OVERHEAD:
        print(
            f"FAIL: disabled tracing costs {disabled_overhead:.4%} of "
            f"dispatch time (gate {MAX_DISABLED_OVERHEAD:.0%})",
            file=sys.stderr,
        )
        return 1
    print("PASS: disabled tracing is below the overhead gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
